#include "sta/blif.hpp"

#include <algorithm>
#include <iostream>
#include <unordered_set>
#include <utility>

#include "characterize/analytic.hpp"
#include "obs/registry.hpp"

namespace prox::sta {

namespace {

constexpr const char* kSite = "sta.blif";

using characterize::CharacterizedGate;
using support::AllocationBudget;
using support::failParse;
using support::failResource;

std::pair<int, int> cellKey(cells::GateType type, int fanin) {
  return {static_cast<int>(type), fanin};
}

// --- Parsed intermediate form ----------------------------------------------
// The reader lexes the whole file into cards first and builds the netlist
// second, so card order (".inputs" after the gates that read them, multiple
// ".outputs" cards) never matters.

struct Row {
  int line = 0;
  std::string plane;  ///< k characters over {'0','1','-'}; empty when k == 0
  char out = '0';
};

struct Cover {
  int line = 0;
  std::vector<std::string> nets;  ///< inputs..., output last (size >= 1)
  std::vector<Row> rows;
};

struct ParsedBlif {
  std::string modelName;
  bool sawModel = false;
  bool ended = false;
  std::vector<std::pair<int, std::string>> inputs;   ///< (line, net)
  std::vector<std::pair<int, std::string>> outputs;  ///< (line, net)
  std::vector<std::pair<int, std::string>> latchOutputs;
  std::vector<Cover> covers;
};

void parseCoverRow(Cover* cover, int line,
                   const std::vector<std::string>& tokens) {
  const std::size_t k = cover->nets.size() - 1;
  Row row;
  row.line = line;
  if (k == 0) {
    if (tokens.size() != 1 || tokens[0].size() != 1 ||
        (tokens[0][0] != '0' && tokens[0][0] != '1')) {
      failParse(kSite, "constant cover row must be a single '0' or '1'", line);
    }
    row.out = tokens[0][0];
  } else {
    if (tokens.size() != 2) {
      failParse(kSite, "cover row must be <plane> <output>", line);
    }
    if (tokens[0].size() != k) {
      failParse(kSite,
                "cover row width " + std::to_string(tokens[0].size()) +
                    " does not match fanin " + std::to_string(k),
                line);
    }
    for (const char c : tokens[0]) {
      if (c != '0' && c != '1' && c != '-') {
        failParse(kSite,
                  std::string("invalid cover-plane character '") + c + "'",
                  line);
      }
    }
    if (tokens[1].size() != 1 || (tokens[1][0] != '0' && tokens[1][0] != '1')) {
      failParse(kSite, "cover output must be '0' or '1'", line);
    }
    row.plane = tokens[0];
    row.out = tokens[1][0];
  }
  cover->rows.push_back(std::move(row));
}

/// Dispatches one logical line (continuations already joined) into @p out.
/// @p openCover tracks the .names card whose rows are being read.
void handleLogicalLine(ParsedBlif* out, Cover** openCover, int line,
                       const std::vector<std::string>& tokens,
                       const BlifOptions& options) {
  const std::string& head = tokens[0];
  if (head[0] != '.') {
    if (*openCover == nullptr) {
      failParse(kSite, "cover row outside a .names card", line);
    }
    parseCoverRow(*openCover, line, tokens);
    return;
  }
  *openCover = nullptr;
  if (head == ".model") {
    if (out->sawModel) failParse(kSite, "duplicate .model", line);
    if (tokens.size() != 2) failParse(kSite, ".model: expected one name", line);
    out->sawModel = true;
    out->modelName = tokens[1];
  } else if (head == ".inputs") {
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      out->inputs.emplace_back(line, tokens[i]);
    }
  } else if (head == ".outputs") {
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      out->outputs.emplace_back(line, tokens[i]);
    }
  } else if (head == ".names") {
    if (tokens.size() < 2) failParse(kSite, ".names: missing output net", line);
    if (tokens.size() - 2 > options.maxFanin) {
      failResource(kSite,
                   ".names fanin " + std::to_string(tokens.size() - 2) +
                       " exceeds cap " + std::to_string(options.maxFanin),
                   line);
    }
    Cover cover;
    cover.line = line;
    cover.nets.assign(tokens.begin() + 1, tokens.end());
    out->covers.push_back(std::move(cover));
    *openCover = &out->covers.back();
  } else if (head == ".latch") {
    if (!options.allowLatches) {
      failParse(kSite, ".latch not allowed by reader options", line);
    }
    // .latch <input> <output> [<type> <control>] [<init-val>]
    const std::size_t operands = tokens.size() - 1;
    if (operands < 2 || operands > 5) {
      failParse(kSite, ".latch: expected 2..5 operands", line);
    }
    out->latchOutputs.emplace_back(line, tokens[2]);
  } else if (head == ".end") {
    out->ended = true;
  } else {
    failParse(kSite, "unsupported construct '" + head + "'", line);
  }
}

/// Lexes @p text into logical lines (comments stripped, '\'-continuations
/// joined, tokens split on blanks) and feeds them through the card state
/// machine.  Every token and row is budget-charged before it is stored.
ParsedBlif parseCards(std::string_view text, const BlifOptions& options,
                      AllocationBudget* budget) {
  ParsedBlif out;
  Cover* openCover = nullptr;
  std::vector<std::string> tokens;
  int logicalLine = 0;

  std::size_t pos = 0;
  int physLine = 0;
  bool done = false;
  while (!done) {
    ++physLine;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = text.size();
      done = true;
    }
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
      line.remove_suffix(1);
    }
    bool continued = false;
    if (!line.empty() && line.back() == '\\') {
      continued = true;
      line.remove_suffix(1);
    }

    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i == start) break;
      std::string_view token = line.substr(start, i - start);
      if (token.size() > options.limits.maxTokenBytes) {
        failResource(kSite, "token exceeds size cap", physLine);
      }
      budget->charge(token.size() + 32, "token", physLine);
      if (tokens.empty()) logicalLine = physLine;
      tokens.emplace_back(token);
    }

    if (continued) continue;  // logical line extends onto the next one
    if (!tokens.empty() && !out.ended) {
      handleLogicalLine(&out, &openCover, logicalLine, tokens, options);
    }
    tokens.clear();
  }
  if (!out.ended) {
    failParse(kSite, "truncated input: missing .end", physLine);
  }
  return out;
}

// --- Cover classification ---------------------------------------------------

/// Maps a validated cover to the characterized cell type it denotes, or
/// fails with a typed ParseError.  Recognized shapes (k = fanin):
///   INV  (k=1):  "0 1" (on-set) or "1 0" (off-set)
///   NAND: single all-'1' row -> '0', or k rows each with exactly one '0'
///         (rest '-') -> '1' covering every position once
///   NOR:  single all-'0' row -> '1', or k rows each with exactly one '1'
///         (rest '-') -> '0' covering every position once
cells::GateType classifyCover(const Cover& cover) {
  const std::size_t k = cover.nets.size() - 1;
  const auto& rows = cover.rows;
  if (rows.empty()) {
    failParse(kSite, ".names with inputs but no cover rows", cover.line);
  }
  const char out0 = rows[0].out;
  for (const Row& r : rows) {
    if (r.out != out0) {
      failParse(kSite, "cover mixes on-set and off-set rows", r.line);
    }
  }
  const auto allAre = [](const std::string& plane, char c) {
    return std::all_of(plane.begin(), plane.end(),
                       [c](char p) { return p == c; });
  };
  if (k == 1) {
    if (rows.size() == 1 && ((rows[0].plane == "0" && out0 == '1') ||
                             (rows[0].plane == "1" && out0 == '0'))) {
      return cells::GateType::Inverter;
    }
    failParse(kSite,
              "single-input cover is not an inverter (buffers have no "
              "characterized cell)",
              cover.line);
  }
  if (rows.size() == 1) {
    if (out0 == '0' && allAre(rows[0].plane, '1')) return cells::GateType::Nand;
    if (out0 == '1' && allAre(rows[0].plane, '0')) return cells::GateType::Nor;
  }
  // k-row one-hot forms: each row distinguishes exactly one position with
  // @p mark ('-' elsewhere) and every position is distinguished exactly once.
  const auto oneHot = [&](char mark, char outBit) {
    if (rows.size() != k || out0 != outBit) return false;
    std::vector<char> seen(k, 0);
    for (const Row& r : rows) {
      int pick = -1;
      for (std::size_t i = 0; i < k; ++i) {
        if (r.plane[i] == mark) {
          if (pick >= 0) return false;
          pick = static_cast<int>(i);
        } else if (r.plane[i] != '-') {
          return false;
        }
      }
      if (pick < 0 || seen[pick] != 0) return false;
      seen[pick] = 1;
    }
    return true;
  };
  if (oneHot('0', '1')) return cells::GateType::Nand;
  if (oneHot('1', '0')) return cells::GateType::Nor;
  failParse(kSite,
            "cover does not denote a characterized INV/NAND/NOR cell",
            cover.line);
}

// --- Netlist construction ---------------------------------------------------

BlifSummary buildFromParsed(const ParsedBlif& parsed, const GateLibrary& library,
                            Netlist* netlist, AllocationBudget* budget) {
  if (!parsed.sawModel) failParse(kSite, "missing .model", 1);
  BlifSummary summary;
  summary.modelName = parsed.modelName;

  std::unordered_set<std::string> declaredInputs;
  for (const auto& [line, net] : parsed.inputs) {
    if (!declaredInputs.insert(net).second) {
      failParse(kSite, "duplicate .inputs net '" + net + "'", line);
    }
    budget->charge(net.size() + 64, "primary input", line);
    netlist->addPrimaryInput(net);
    summary.inputs.push_back(net);
  }
  std::unordered_set<std::string> declaredOutputs;
  for (const auto& [line, net] : parsed.outputs) {
    if (!declaredOutputs.insert(net).second) {
      failParse(kSite, "duplicate .outputs net '" + net + "'", line);
    }
    summary.outputs.push_back(net);
  }

  // Latch outputs become pseudo-primary-inputs: the classic STA cut at
  // register boundaries.  Re-driving a declared input is a hard reject (two
  // different no-event sources for one net is meaningless).
  for (const auto& [line, net] : parsed.latchOutputs) {
    if (netlist->isDriven(net)) {
      failParse(kSite, ".latch output '" + net + "' re-drives a net", line);
    }
    budget->charge(net.size() + 64, "latch output", line);
    netlist->addPrimaryInput(net);
    ++summary.latches;
  }

  // Gates.  Instance names are the output net, uniquified when multiple
  // covers drive the same net (that multi-driver defect is recorded by the
  // lenient add for the caller's StructuralPolicy to judge, not decided
  // here).
  std::unordered_set<std::string> usedNames;
  for (const Cover& cover : parsed.covers) {
    const std::size_t k = cover.nets.size() - 1;
    const std::string& outNet = cover.nets.back();
    if (k == 0) {
      if (cover.rows.size() > 1) {
        failParse(kSite, "constant cover has multiple rows", cover.line);
      }
      if (netlist->isDriven(outNet)) {
        failParse(kSite, "constant re-drives net '" + outNet + "'",
                  cover.line);
      }
      budget->charge(outNet.size() + 64, "constant net", cover.line);
      netlist->addPrimaryInput(outNet);
      ++summary.constants;
      continue;
    }
    const cells::GateType type = classifyCover(cover);
    const CharacterizedGate& cell =
        library.require(type, static_cast<int>(k), cover.line);
    std::string name = outNet;
    if (!usedNames.insert(name).second) {
      int n = 2;
      do {
        name = outNet + "#" + std::to_string(n++);
      } while (!usedNames.insert(name).second);
    }
    budget->chargeItems(k + 1, 48, "instance nets", cover.line);
    std::vector<std::string> inputNets(cover.nets.begin(),
                                       cover.nets.end() - 1);
    netlist->addInstanceLenient(name, cell, std::move(inputNets), outNet);
    ++summary.gates;
  }

  // Every declared output must be driven: an undriven .outputs net would
  // silently vanish from any timing report.
  for (const auto& [line, net] : parsed.outputs) {
    if (!netlist->isDriven(net)) {
      failParse(kSite, "undriven .outputs net '" + net + "'", line);
    }
  }

  PROX_OBS_COUNT("sta.blif.gates", summary.gates);
  PROX_OBS_COUNT("sta.blif.latches", summary.latches);
  return summary;
}

BlifSummary parseText(std::string_view text, const GateLibrary& library,
                      Netlist* netlist, const BlifOptions& options) {
  if (text.size() > options.limits.maxInputBytes) {
    failResource(kSite, "input exceeds size cap");
  }
  AllocationBudget budget(kSite, text.size(), options.limits);
  const ParsedBlif parsed = parseCards(text, options, &budget);
  return buildFromParsed(parsed, library, netlist, &budget);
}

}  // namespace

// --- GateLibrary ------------------------------------------------------------

void GateLibrary::add(const CharacterizedGate& cell) {
  cells_[cellKey(cell.gate.spec.type, cell.gate.spec.fanin)] = &cell;
}

const CharacterizedGate& GateLibrary::adopt(CharacterizedGate cell) {
  owned_.push_back(std::move(cell));
  const CharacterizedGate& stored = owned_.back();
  cells_[cellKey(stored.gate.spec.type, stored.gate.spec.fanin)] = &stored;
  return stored;
}

const CharacterizedGate* GateLibrary::find(cells::GateType type,
                                           int fanin) const {
  const auto it = cells_.find(cellKey(type, fanin));
  if (it != cells_.end()) return it->second;
  if (!factory_) return nullptr;
  std::optional<CharacterizedGate> made = factory_(type, fanin);
  if (!made.has_value()) return nullptr;
  owned_.push_back(std::move(*made));
  const CharacterizedGate& stored = owned_.back();
  cells_[cellKey(type, fanin)] = &stored;
  return &stored;
}

const CharacterizedGate& GateLibrary::require(cells::GateType type, int fanin,
                                              int line) const {
  if (const CharacterizedGate* cell = find(type, fanin)) return *cell;
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::TableMissing,
                              "no characterized cell for " +
                                  cells::gateTypeName(type, fanin))
          .withSite(kSite)
          .withLine(line));
}

GateLibrary analyticLibrary(int maxFanin) {
  GateLibrary lib;
  lib.setFactory([maxFanin](cells::GateType type, int fanin)
                     -> std::optional<CharacterizedGate> {
    if (fanin < 1 || fanin > maxFanin) return std::nullopt;
    if (type == cells::GateType::Inverter && fanin != 1) return std::nullopt;
    if (type != cells::GateType::Inverter &&
        type != cells::GateType::Nand && type != cells::GateType::Nor) {
      return std::nullopt;
    }
    cells::CellSpec spec;
    spec.type = type;
    spec.fanin = fanin;
    return characterize::analyticGate(spec);
  });
  return lib;
}

// --- Entry points -----------------------------------------------------------

BlifSummary readBlif(std::istream& is, const GateLibrary& library,
                     Netlist* netlist, const BlifOptions& options) {
  const std::string text =
      support::readStreamBounded(is, options.limits.maxInputBytes, kSite);
  return parseText(text, library, netlist, options);
}

BlifSummary readBlifString(std::string_view text, const GateLibrary& library,
                           Netlist* netlist, const BlifOptions& options) {
  return parseText(text, library, netlist, options);
}

BlifSummary readBlifFile(const std::string& path, const GateLibrary& library,
                         Netlist* netlist, const BlifOptions& options) {
  if (path == "-") return readBlif(std::cin, library, netlist, options);
  const std::string text =
      support::readFileBounded(path, options.limits.maxInputBytes, kSite);
  return parseText(text, library, netlist, options);
}

}  // namespace prox::sta
