#include "sta/synth.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace prox::sta {

namespace {

/// SplitMix64 finalizer: the avalanche core of the counter-based stream.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

// Gate-key namespaces for decisions that are not per-gate: layer-level
// choices and the primary-input stimulus.  Real gate indices are < 2^63, so
// the high bit cleanly separates the spaces.
constexpr std::uint64_t kLayerKey = 0x8000000000000000ULL;
constexpr std::uint64_t kInputKey = 0xC000000000000000ULL;

std::uint32_t faninCapFor(const SynthSpec& spec, std::uint32_t sourceCount) {
  return spec.maxFanin < sourceCount ? spec.maxFanin : sourceCount;
}

std::string inputNetName(std::uint32_t k) { return "pi" + std::to_string(k); }

std::string gateNetName(std::uint32_t layer, std::uint32_t pos) {
  return "n" + std::to_string(layer) + "_" + std::to_string(pos);
}

std::string sourceNetName(std::uint32_t layer, std::uint32_t sourceIndex) {
  return layer == 0 ? inputNetName(sourceIndex)
                    : gateNetName(layer - 1, sourceIndex);
}

/// Emits "<card> net net ..." wrapped at @p perLine names per line with
/// BLIF '\' continuations, so large circuits also exercise the reader's
/// continuation handling.
void emitNetCard(std::ostream& os, const char* card,
                 const std::vector<std::string>& nets,
                 std::size_t perLine = 10) {
  os << card;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (i != 0 && i % perLine == 0) os << " \\\n ";
    os << ' ' << nets[i];
  }
  os << '\n';
}

}  // namespace

std::uint64_t synthRandom(std::uint64_t seed, std::uint64_t gate,
                          std::uint64_t slot) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = mix64(z ^ mix64(gate + 0x9e3779b97f4a7c15ULL));
  z = mix64(z ^ mix64(slot + 0x632be59bd9b4e019ULL));
  return z;
}

void validateSynthSpec(const SynthSpec& spec) {
  if (spec.depth == 0) throw std::invalid_argument("SynthSpec: depth == 0");
  if (spec.width == 0) throw std::invalid_argument("SynthSpec: width == 0");
  if (spec.primaryInputs == 0) {
    throw std::invalid_argument("SynthSpec: primaryInputs == 0");
  }
  if (spec.maxFanin == 0) {
    throw std::invalid_argument("SynthSpec: maxFanin == 0");
  }
  if (spec.nandWeight + spec.norWeight + spec.invWeight == 0) {
    throw std::invalid_argument("SynthSpec: all gate-mix weights are zero");
  }
  if (spec.modelName.empty()) {
    throw std::invalid_argument("SynthSpec: empty model name");
  }
  if (spec.maxFanout != 0) {
    // Worst-case demand on a source layer is width * maxFanin consumer
    // slots; the scarcest source layer has min(primaryInputs, width) nets.
    const std::uint64_t scarcest =
        spec.primaryInputs < spec.width ? spec.primaryInputs : spec.width;
    const std::uint64_t demand =
        static_cast<std::uint64_t>(spec.width) * spec.maxFanin;
    if (static_cast<std::uint64_t>(spec.maxFanout) * scarcest < demand) {
      throw std::invalid_argument(
          "SynthSpec: maxFanout * min(primaryInputs, width) < width * "
          "maxFanin -- no legal fanout assignment exists");
    }
  }
}

SynthGate synthGateAt(const SynthSpec& spec, std::uint64_t index) {
  const std::uint32_t layer = static_cast<std::uint32_t>(index / spec.width);
  const std::uint32_t pos = static_cast<std::uint32_t>(index % spec.width);
  const std::uint32_t sourceCount =
      layer == 0 ? spec.primaryInputs : spec.width;
  const std::uint32_t faninCap = faninCapFor(spec, sourceCount);

  SynthGate gate;
  // Type: weighted pick; fanin-1 gates are always inverters so the emitted
  // BLIF cover round-trips to the same cell the direct build uses.
  const std::uint64_t weightSum =
      spec.nandWeight + spec.norWeight + spec.invWeight;
  const std::uint64_t roll = synthRandom(spec.seed, index, 0) % weightSum;
  std::uint32_t fanin = 1;
  if (faninCap < 2 || roll >= spec.nandWeight + spec.norWeight) {
    gate.type = cells::GateType::Inverter;
  } else {
    gate.type = roll < spec.nandWeight ? cells::GateType::Nand
                                       : cells::GateType::Nor;
    fanin = 2 + static_cast<std::uint32_t>(synthRandom(spec.seed, index, 1) %
                                           (faninCap - 1));
  }

  gate.sources.reserve(fanin);
  if (spec.maxFanout != 0) {
    // Bounded-fanout assignment: gate (layer, pos) owns the consumer-slot
    // window [pos * maxFanin, pos * maxFanin + fanin) and slot s feeds
    // source (s + rotation) mod sourceCount.  Windows are disjoint
    // intervals, so each source serves at most ceil(width * maxFanin /
    // sourceCount) <= maxFanout consumers (the validate() feasibility
    // condition), and fanin <= sourceCount consecutive slots are distinct
    // mod sourceCount.  The per-layer random rotation keeps the wiring
    // seed-dependent without breaking the interval structure.
    const std::uint64_t rotation =
        synthRandom(spec.seed, kLayerKey | layer, 0) % sourceCount;
    const std::uint64_t base =
        static_cast<std::uint64_t>(pos) * spec.maxFanin + rotation;
    for (std::uint32_t i = 0; i < fanin; ++i) {
      gate.sources.push_back(
          static_cast<std::uint32_t>((base + i) % sourceCount));
    }
  } else {
    // Unbounded fanout: independent random picks, linear probing past
    // duplicates (fanin <= sourceCount, so a free source always exists).
    for (std::uint32_t i = 0; i < fanin; ++i) {
      std::uint32_t pick = static_cast<std::uint32_t>(
          synthRandom(spec.seed, index, 16 + i) % sourceCount);
      for (bool taken = true; taken;) {
        taken = false;
        for (const std::uint32_t s : gate.sources) {
          if (s == pick) {
            pick = (pick + 1) % sourceCount;
            taken = true;
            break;
          }
        }
      }
      gate.sources.push_back(pick);
    }
  }
  return gate;
}

void generateBlif(const SynthSpec& spec, std::ostream& os) {
  validateSynthSpec(spec);
  os << ".model " << spec.modelName << '\n';

  std::vector<std::string> inputs;
  inputs.reserve(spec.primaryInputs);
  for (std::uint32_t k = 0; k < spec.primaryInputs; ++k) {
    inputs.push_back(inputNetName(k));
  }
  emitNetCard(os, ".inputs", inputs);

  std::vector<std::string> outputs;
  outputs.reserve(spec.width);
  for (std::uint32_t j = 0; j < spec.width; ++j) {
    outputs.push_back(gateNetName(spec.depth - 1, j));
  }
  emitNetCard(os, ".outputs", outputs);

  for (std::uint32_t layer = 0; layer < spec.depth; ++layer) {
    for (std::uint32_t pos = 0; pos < spec.width; ++pos) {
      const std::uint64_t index =
          static_cast<std::uint64_t>(layer) * spec.width + pos;
      const SynthGate gate = synthGateAt(spec, index);
      os << ".names";
      for (const std::uint32_t s : gate.sources) {
        os << ' ' << sourceNetName(layer, s);
      }
      os << ' ' << gateNetName(layer, pos) << '\n';
      // Single-row canonical covers (see blif.hpp's supported subset).
      const std::size_t k = gate.sources.size();
      switch (gate.type) {
        case cells::GateType::Inverter:
          os << "0 1\n";
          break;
        case cells::GateType::Nand:
          os << std::string(k, '1') << " 0\n";
          break;
        case cells::GateType::Nor:
          os << std::string(k, '0') << " 1\n";
          break;
        case cells::GateType::Complex:
          break;  // never generated
      }
    }
  }
  os << ".end\n";
}

std::string generateBlifString(const SynthSpec& spec) {
  std::ostringstream os;
  generateBlif(spec, os);
  return os.str();
}

std::vector<std::string> buildNetlist(const SynthSpec& spec,
                                      const GateLibrary& library,
                                      Netlist* netlist) {
  validateSynthSpec(spec);
  for (std::uint32_t k = 0; k < spec.primaryInputs; ++k) {
    netlist->addPrimaryInput(inputNetName(k));
  }
  for (std::uint32_t layer = 0; layer < spec.depth; ++layer) {
    for (std::uint32_t pos = 0; pos < spec.width; ++pos) {
      const std::uint64_t index =
          static_cast<std::uint64_t>(layer) * spec.width + pos;
      const SynthGate gate = synthGateAt(spec, index);
      const characterize::CharacterizedGate& cell = library.require(
          gate.type, static_cast<int>(gate.sources.size()));
      std::vector<std::string> inputNets;
      inputNets.reserve(gate.sources.size());
      for (const std::uint32_t s : gate.sources) {
        inputNets.push_back(sourceNetName(layer, s));
      }
      const std::string outNet = gateNetName(layer, pos);
      netlist->addInstance(outNet, cell, std::move(inputNets), outNet);
    }
  }
  std::vector<std::string> outputs;
  outputs.reserve(spec.width);
  for (std::uint32_t j = 0; j < spec.width; ++j) {
    outputs.push_back(gateNetName(spec.depth - 1, j));
  }
  return outputs;
}

std::vector<SynthArrival> synthInputArrivals(const SynthSpec& spec) {
  validateSynthSpec(spec);
  std::vector<SynthArrival> out;
  out.reserve(spec.primaryInputs);
  for (std::uint32_t k = 0; k < spec.primaryInputs; ++k) {
    const std::uint64_t key = kInputKey | k;
    SynthArrival a;
    a.net = inputNetName(k);
    a.arrival.time =
        static_cast<double>(synthRandom(spec.seed, key, 0) % 256) * 1.0e-12;
    a.arrival.slope =
        static_cast<double>(64 + synthRandom(spec.seed, key, 1) % 512) *
        1.0e-12;
    a.arrival.edge = wave::Edge::Rising;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace prox::sta
