#include "sta/timing_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "sta/batch_eval.hpp"
#include "support/budget.hpp"

namespace prox::sta {

void TimingAnalyzer::syncArrivalStorage() {
  if (arrivals_.size() < netlist_.netCount()) {
    arrivals_.resize(netlist_.netCount());
    hasArrival_.resize(netlist_.netCount(), 0);
  }
}

void TimingAnalyzer::setInputArrival(const std::string& net, Arrival arrival) {
  const NetId id = netlist_.findNet(net);
  if (!id.valid() || !netlist_.netIsPrimaryInput(id)) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input: " + net);
  }
  setInputArrival(id, arrival);
}

void TimingAnalyzer::setInputArrival(NetId net, Arrival arrival) {
  if (!net.valid() || !netlist_.netIsPrimaryInput(net)) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input net id");
  }
  syncArrivalStorage();
  arrivals_[net.value] = arrival;
  hasArrival_[net.value] = 1;
}

void TimingAnalyzer::run() {
  PROX_OBS_COUNT("sta.graph.runs", 1);
  PROX_OBS_SCOPED_TIMER("sta.graph.seconds");
  PROX_OBS_SPAN("sta.run");
  degradedArcs_ = 0;
  degradedArcNames_.clear();
  structuralIssues_.clear();
  syncArrivalStorage();
  const int threads =
      options_.threads == 0 ? par::defaultThreadCount() : options_.threads;

  // Structural gate: under Reject a defective graph throws here, before any
  // arc is evaluated; under Degrade the levelization below already has the
  // loops broken and the defects recorded.
  LevelizeResult structure = netlist_.levelize(options_.structural);
  structuralIssues_ = std::move(structure.issues);
  std::vector<char> structurallyDegraded(netlist_.nodeCount(), 0);
  for (const NodeId n : structure.degradedNodes) {
    structurallyDegraded[n.value] = 1;
  }

  // Levelized evaluation: all arcs of one level read only arrivals committed
  // by earlier levels, so a level's tasks share the arrival array read-only
  // and each writes its own result slot.  Slots commit serially in node
  // order between levels, making arrival values (and degradedArcs_)
  // bit-identical at any thread count.  Task indices restart per level, so
  // task-keyed fault plans address "arc i of each level" deterministically.
  struct ArcResult {
    std::optional<Arrival> out;
    ArcQuality quality = ArcQuality::Full;
  };
  std::vector<ArcResult> results;
  for (std::size_t levelIndex = 0; levelIndex < structure.levelCount();
       ++levelIndex) {
    PROX_OBS_SPAN_ARG("sta.level", "level", levelIndex);
    support::budgetCheckRss("sta.timing_graph");
    const std::span<const NodeId> level =
        structure.level(LevelId(static_cast<std::uint32_t>(levelIndex)));
    results.assign(level.size(), ArcResult{});
    if (mode_ == DelayMode::Proximity) {
      // Batched evaluation: each task owns a fixed-size run of the level and
      // feeds it to evaluateGateBatch, which answers all the run's dual-table
      // queries through evaluateMany (amortized grid location, vectorized
      // blends).  Results are bit-identical to the per-arc path; the serial
      // commit loop below is unchanged, so arrival values stay independent
      // of the chunking and the thread count.
      constexpr std::size_t kChunk = 64;
      const std::size_t chunkCount = (level.size() + kChunk - 1) / kChunk;
      par::parallelFor(
          chunkCount,
          [&](std::size_t c) {
            const std::size_t begin = c * kChunk;
            const std::size_t end = std::min(begin + kChunk, level.size());
            const std::size_t count = end - begin;
            PROX_OBS_COUNT("sta.graph.nodes_visited", count);
            // Per-thread chunk scratch: one chunk is in flight per thread at
            // a time, so reusing these across chunks (capacity preserved)
            // removes ~2 allocations per arc from the batched inner loop.
            thread_local std::vector<std::vector<std::optional<Arrival>>>
                pinsBuf;
            thread_local std::vector<BatchArc> arcs;
            thread_local std::vector<BatchArcResult> out;
            if (pinsBuf.size() < count) pinsBuf.resize(count);
            arcs.assign(count, BatchArc{});
            for (std::size_t k = 0; k < count; ++k) {
              const NodeId node = level[begin + k];
              const std::span<const NetId> inputs = netlist_.nodeInputs(node);
              std::vector<std::optional<Arrival>>& pins = pinsBuf[k];
              pins.clear();
              pins.reserve(inputs.size());
              for (const NetId net : inputs) {
                pins.push_back(hasArrival_[net.value] != 0
                                   ? std::optional<Arrival>(arrivals_[net.value])
                                   : std::nullopt);
              }
              arcs[k].cell = &netlist_.nodeCell(node);
              arcs[k].pins = &pins;
            }
            out.assign(count, BatchArcResult{});
            evaluateGateBatch(std::span<const BatchArc>(arcs.data(), count),
                              mode_, options_, out);
            for (std::size_t k = 0; k < count; ++k) {
              results[begin + k].out = out[k].arrival;
              results[begin + k].quality = out[k].quality;
            }
          },
          {.threads = threads, .failFast = true, .cancel = options_.cancel});
    } else {
      par::parallelFor(
          level.size(),
          [&](std::size_t i) {
            const NodeId node = level[i];
            PROX_OBS_COUNT("sta.graph.nodes_visited", 1);
            const std::span<const NetId> inputs = netlist_.nodeInputs(node);
            std::vector<std::optional<Arrival>> pins;
            pins.reserve(inputs.size());
            for (const NetId net : inputs) {
              pins.push_back(hasArrival_[net.value] != 0
                                 ? std::optional<Arrival>(arrivals_[net.value])
                                 : std::nullopt);
            }
            results[i].out = evaluateGate(netlist_.nodeCell(node), pins, mode_,
                                          options_, &results[i].quality);
          },
          {.threads = threads, .failFast = true, .cancel = options_.cancel});
    }
    for (std::size_t i = 0; i < level.size(); ++i) {
      const NodeId node = level[i];
      if (results[i].out) {
        const NetId out = netlist_.nodeOutput(node);
        arrivals_[out.value] = *results[i].out;
        hasArrival_[out.value] = 1;
      }
      if (results[i].quality != ArcQuality::Full ||
          structurallyDegraded[node.value] != 0) {
        ++degradedArcs_;
        degradedArcNames_.push_back(netlist_.nodeName(node));
      }
    }
    // Running degradation tally next to the level spans, so a trace shows
    // where in the graph the delay model started falling back.
    PROX_OBS_TRACE_COUNTER("sta.degraded_arcs", degradedArcs_);
  }
}

std::optional<Arrival> TimingAnalyzer::arrival(const std::string& net) const {
  return arrival(netlist_.findNet(net));
}

std::optional<Arrival> TimingAnalyzer::arrival(NetId net) const {
  if (!net.valid() || net.value >= hasArrival_.size() ||
      hasArrival_[net.value] == 0) {
    return std::nullopt;
  }
  return arrivals_[net.value];
}

}  // namespace prox::sta
