#include "sta/timing_graph.hpp"

#include <stdexcept>
#include <unordered_set>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "support/budget.hpp"

namespace prox::sta {

void TimingAnalyzer::setInputArrival(const std::string& net, Arrival arrival) {
  if (netlist_.primaryInputs().count(net) == 0) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input: " + net);
  }
  arrivals_[net] = arrival;
}

void TimingAnalyzer::run() {
  PROX_OBS_COUNT("sta.graph.runs", 1);
  PROX_OBS_SCOPED_TIMER("sta.graph.seconds");
  PROX_OBS_SPAN("sta.run");
  degradedArcs_ = 0;
  degradedArcNames_.clear();
  structuralIssues_.clear();
  const int threads =
      options_.threads == 0 ? par::defaultThreadCount() : options_.threads;

  // Structural gate: under Reject a defective graph throws here, before any
  // arc is evaluated; under Degrade the levelization below already has the
  // loops broken and the defects recorded.
  LevelizeResult structure = netlist_.levelize(options_.structural);
  structuralIssues_ = std::move(structure.issues);
  std::unordered_set<std::string> structurallyDegraded(
      structure.degradedInstances.begin(), structure.degradedInstances.end());

  // Levelized evaluation: all arcs of one level read only arrivals committed
  // by earlier levels, so a level's tasks share arrivals_ read-only and each
  // writes its own result slot.  Slots commit serially in instance order
  // between levels, making arrival values (and degradedArcs_) bit-identical
  // at any thread count.  Task indices restart per level, so task-keyed
  // fault plans address "arc i of each level" deterministically.
  struct ArcResult {
    std::optional<Arrival> out;
    ArcQuality quality = ArcQuality::Full;
  };
  std::size_t levelIndex = 0;
  for (const std::vector<const Instance*>& level : structure.levels) {
    PROX_OBS_SPAN_ARG("sta.level", "level", levelIndex);
    ++levelIndex;
    support::budgetCheckRss("sta.timing_graph");
    std::vector<ArcResult> results(level.size());
    par::parallelFor(
        level.size(),
        [&](std::size_t i) {
          const Instance* inst = level[i];
          PROX_OBS_COUNT("sta.graph.nodes_visited", 1);
          std::vector<std::optional<Arrival>> pins;
          pins.reserve(inst->inputNets.size());
          for (const std::string& net : inst->inputNets) {
            auto it = arrivals_.find(net);
            pins.push_back(it == arrivals_.end()
                               ? std::nullopt
                               : std::optional<Arrival>(it->second));
          }
          results[i].out = evaluateGate(*inst->cell, pins, mode_, options_,
                                        &results[i].quality);
        },
        {.threads = threads, .failFast = true, .cancel = options_.cancel});
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (results[i].out) {
        arrivals_[level[i]->outputNet] = *results[i].out;
      }
      if (results[i].quality != ArcQuality::Full ||
          structurallyDegraded.count(level[i]->name) != 0) {
        ++degradedArcs_;
        degradedArcNames_.push_back(level[i]->name);
      }
    }
    // Running degradation tally next to the level spans, so a trace shows
    // where in the graph the delay model started falling back.
    PROX_OBS_TRACE_COUNTER("sta.degraded_arcs", degradedArcs_);
  }
}

std::optional<Arrival> TimingAnalyzer::arrival(const std::string& net) const {
  auto it = arrivals_.find(net);
  if (it == arrivals_.end()) return std::nullopt;
  return it->second;
}

}  // namespace prox::sta
