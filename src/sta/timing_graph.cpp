#include "sta/timing_graph.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "support/budget.hpp"

namespace prox::sta {

void TimingAnalyzer::syncArrivalStorage() {
  if (arrivals_.size() < netlist_.netCount()) {
    arrivals_.resize(netlist_.netCount());
    hasArrival_.resize(netlist_.netCount(), 0);
  }
}

void TimingAnalyzer::setInputArrival(const std::string& net, Arrival arrival) {
  const NetId id = netlist_.findNet(net);
  if (!id.valid() || !netlist_.netIsPrimaryInput(id)) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input: " + net);
  }
  setInputArrival(id, arrival);
}

void TimingAnalyzer::setInputArrival(NetId net, Arrival arrival) {
  if (!net.valid() || !netlist_.netIsPrimaryInput(net)) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input net id");
  }
  syncArrivalStorage();
  arrivals_[net.value] = arrival;
  hasArrival_[net.value] = 1;
}

void TimingAnalyzer::run() {
  PROX_OBS_COUNT("sta.graph.runs", 1);
  PROX_OBS_SCOPED_TIMER("sta.graph.seconds");
  PROX_OBS_SPAN("sta.run");
  degradedArcs_ = 0;
  degradedArcNames_.clear();
  structuralIssues_.clear();
  syncArrivalStorage();
  const int threads =
      options_.threads == 0 ? par::defaultThreadCount() : options_.threads;

  // Structural gate: under Reject a defective graph throws here, before any
  // arc is evaluated; under Degrade the levelization below already has the
  // loops broken and the defects recorded.
  LevelizeResult structure = netlist_.levelize(options_.structural);
  structuralIssues_ = std::move(structure.issues);
  std::vector<char> structurallyDegraded(netlist_.nodeCount(), 0);
  for (const NodeId n : structure.degradedNodes) {
    structurallyDegraded[n.value] = 1;
  }

  // Levelized evaluation: all arcs of one level read only arrivals committed
  // by earlier levels, so a level's tasks share the arrival array read-only
  // and each writes its own result slot.  Slots commit serially in node
  // order between levels, making arrival values (and degradedArcs_)
  // bit-identical at any thread count.  Task indices restart per level, so
  // task-keyed fault plans address "arc i of each level" deterministically.
  struct ArcResult {
    std::optional<Arrival> out;
    ArcQuality quality = ArcQuality::Full;
  };
  std::vector<ArcResult> results;
  for (std::size_t levelIndex = 0; levelIndex < structure.levelCount();
       ++levelIndex) {
    PROX_OBS_SPAN_ARG("sta.level", "level", levelIndex);
    support::budgetCheckRss("sta.timing_graph");
    const std::span<const NodeId> level =
        structure.level(LevelId(static_cast<std::uint32_t>(levelIndex)));
    results.assign(level.size(), ArcResult{});
    par::parallelFor(
        level.size(),
        [&](std::size_t i) {
          const NodeId node = level[i];
          PROX_OBS_COUNT("sta.graph.nodes_visited", 1);
          const std::span<const NetId> inputs = netlist_.nodeInputs(node);
          std::vector<std::optional<Arrival>> pins;
          pins.reserve(inputs.size());
          for (const NetId net : inputs) {
            pins.push_back(hasArrival_[net.value] != 0
                               ? std::optional<Arrival>(arrivals_[net.value])
                               : std::nullopt);
          }
          results[i].out = evaluateGate(netlist_.nodeCell(node), pins, mode_,
                                        options_, &results[i].quality);
        },
        {.threads = threads, .failFast = true, .cancel = options_.cancel});
    for (std::size_t i = 0; i < level.size(); ++i) {
      const NodeId node = level[i];
      if (results[i].out) {
        const NetId out = netlist_.nodeOutput(node);
        arrivals_[out.value] = *results[i].out;
        hasArrival_[out.value] = 1;
      }
      if (results[i].quality != ArcQuality::Full ||
          structurallyDegraded[node.value] != 0) {
        ++degradedArcs_;
        degradedArcNames_.push_back(netlist_.nodeName(node));
      }
    }
    // Running degradation tally next to the level spans, so a trace shows
    // where in the graph the delay model started falling back.
    PROX_OBS_TRACE_COUNTER("sta.degraded_arcs", degradedArcs_);
  }
}

std::optional<Arrival> TimingAnalyzer::arrival(const std::string& net) const {
  return arrival(netlist_.findNet(net));
}

std::optional<Arrival> TimingAnalyzer::arrival(NetId net) const {
  if (!net.valid() || net.value >= hasArrival_.size() ||
      hasArrival_[net.value] == 0) {
    return std::nullopt;
  }
  return arrivals_[net.value];
}

}  // namespace prox::sta
