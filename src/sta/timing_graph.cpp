#include "sta/timing_graph.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"

namespace prox::sta {

void TimingAnalyzer::setInputArrival(const std::string& net, Arrival arrival) {
  if (netlist_.primaryInputs().count(net) == 0) {
    throw std::invalid_argument("TimingAnalyzer: not a primary input: " + net);
  }
  arrivals_[net] = arrival;
}

void TimingAnalyzer::run() {
  PROX_OBS_COUNT("sta.graph.runs", 1);
  PROX_OBS_SCOPED_TIMER("sta.graph.seconds");
  degradedArcs_ = 0;
  for (const Instance* inst : netlist_.topologicalOrder()) {
    PROX_OBS_COUNT("sta.graph.nodes_visited", 1);
    std::vector<std::optional<Arrival>> pins;
    pins.reserve(inst->inputNets.size());
    for (const std::string& net : inst->inputNets) {
      auto it = arrivals_.find(net);
      pins.push_back(it == arrivals_.end() ? std::nullopt
                                           : std::optional<Arrival>(it->second));
    }
    ArcQuality quality = ArcQuality::Full;
    if (auto out = evaluateGate(*inst->cell, pins, mode_, options_, &quality)) {
      arrivals_[inst->outputNet] = *out;
    }
    if (quality != ArcQuality::Full) ++degradedArcs_;
  }
}

std::optional<Arrival> TimingAnalyzer::arrival(const std::string& net) const {
  auto it = arrivals_.find(net);
  if (it == arrivals_.end()) return std::nullopt;
  return it->second;
}

}  // namespace prox::sta
