#include "sta/flat_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "cells/cell.hpp"
#include "model/stimulus.hpp"
#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"
#include "waveform/measure.hpp"

namespace prox::sta {

FlatSimResult simulateFlat(
    const Netlist& netlist,
    const std::unordered_map<std::string, Arrival>& inputArrivals,
    double settle) {
  PROX_OBS_COUNT("sta.flat_sim.runs", 1);
  PROX_OBS_COUNT("sta.flat_sim.instances", netlist.nodeCount());
  PROX_OBS_SCOPED_TIMER("sta.flat_sim.seconds");
  // 1. Direction/coarse-time prediction: a proximity STA pass supplies each
  //    net's transition direction and a horizon estimate.
  TimingAnalyzer predictor(netlist, DelayMode::Proximity);
  for (const auto& [net, arr] : inputArrivals) {
    predictor.setInputArrival(net, arr);
  }
  predictor.run();

  // 2. Build the flat circuit: one node per net, one transistor-level cell
  //    per instance, pins tied to net nodes with ideal (0 V) sources.
  spice::Circuit ckt;
  auto netNode = [&](NetId net) {
    return ckt.node("net." + netlist.netName(net));
  };

  // First consumer of each net (for thresholds / stable levels of PIs).
  std::vector<NodeId> firstConsumer(netlist.netCount());
  for (std::uint32_t i = 0; i < netlist.nodeCount(); ++i) {
    for (const NetId net : netlist.nodeInputs(NodeId(i))) {
      if (!firstConsumer[net.value].valid()) {
        firstConsumer[net.value] = NodeId(i);
      }
    }
  }
  const auto consumerOf = [&](NetId net) {
    return net.valid() ? firstConsumer[net.value] : NodeId();
  };

  int tieCounter = 0;
  for (std::uint32_t i = 0; i < netlist.nodeCount(); ++i) {
    const NodeId node(i);
    const cells::CellNets nets = cells::buildCell(
        ckt, netlist.nodeCell(node).gate.spec, netlist.nodeName(node));
    ckt.add<spice::VoltageSource>("tie" + std::to_string(tieCounter++),
                                  nets.out, netNode(netlist.nodeOutput(node)),
                                  0.0);
    const std::span<const NetId> inputs = netlist.nodeInputs(node);
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      ckt.add<spice::VoltageSource>("tie" + std::to_string(tieCounter++),
                                    nets.inputs[k], netNode(inputs[k]), 0.0);
    }
  }

  // 3. Drive the primary inputs.  Everything is shifted so ramps start after
  //    t = 0 (the DC operating point then captures the true initial state).
  double minStart = 0.0;
  double horizon = 0.0;
  for (const auto& [net, arr] : inputArrivals) {
    const NodeId consumer = consumerOf(netlist.findNet(net));
    if (!consumer.valid()) continue;
    const auto& gate = netlist.nodeCell(consumer).gate;
    model::InputEvent ev{0, arr.edge, arr.time, arr.slope};
    minStart = std::min(
        minStart, model::rampStart(ev, gate.spec.tech.vdd, gate.thresholds));
    horizon = std::max(horizon, arr.time + arr.slope);
  }
  // Horizon: last predicted output event across the design.
  for (std::uint32_t i = 0; i < netlist.nodeCount(); ++i) {
    if (const auto a = predictor.arrival(netlist.nodeOutput(NodeId(i)))) {
      horizon = std::max(horizon, a->time + a->slope);
    }
  }
  const double shift = 0.3e-9 - minStart;
  const double tstop = horizon + shift + settle;

  for (const auto& [net, arr] : inputArrivals) {
    const NetId netId = netlist.findNet(net);
    const NodeId consumer = consumerOf(netId);
    if (!consumer.valid()) continue;  // dangling PI: nothing to drive
    const auto& gate = netlist.nodeCell(consumer).gate;
    model::InputEvent ev{0, arr.edge, arr.time + shift, arr.slope};
    ckt.add<spice::VoltageSource>(
        "vpi." + net, netNode(netId), spice::kGround,
        model::makeInputWave(ev, gate.spec.tech.vdd, gate.thresholds));
  }
  // Stable primary inputs: non-controlling level of the first consumer.
  for (const NetId net : netlist.primaryInputs()) {
    if (inputArrivals.count(netlist.netName(net)) != 0) continue;
    const NodeId consumer = consumerOf(net);
    if (!consumer.valid()) continue;
    ckt.add<spice::VoltageSource>(
        "vpi." + netlist.netName(net), netNode(net), spice::kGround,
        netlist.nodeCell(consumer).gate.spec.nonControllingLevel());
  }

  // 4. Transient.
  spice::TranOptions opt;
  opt.tstop = tstop;
  opt.hmax = tstop / 400.0;
  const spice::TranResult tr = spice::transient(ckt, opt);

  // 5. Measure every driven net with its driving cell's thresholds.
  FlatSimResult result;
  for (const NetId net : netlist.primaryInputs()) {
    if (!consumerOf(net).valid()) continue;  // dangling: never built
    result.waves.emplace(netlist.netName(net),
                         tr.node(netNode(net)).shifted(-shift));
  }
  for (std::uint32_t i = 0; i < netlist.nodeCount(); ++i) {
    const NodeId node(i);
    const NetId outNet = netlist.nodeOutput(node);
    const std::string& outName = netlist.netName(outNet);
    const wave::Waveform w = tr.node(netNode(outNet)).shifted(-shift);
    result.waves.emplace(outName, w);
    const auto predicted = predictor.arrival(outNet);
    if (!predicted) continue;  // net never switches
    const wave::Thresholds& th = netlist.nodeCell(node).gate.thresholds;
    const auto tOut = wave::outputRefTime(w, predicted->edge, th, w.startTime());
    const auto slope = wave::transitionTime(w, predicted->edge, th);
    if (tOut && slope) {
      result.arrivals[outName] = Arrival{*tOut, *slope, predicted->edge};
    }
  }
  return result;
}

}  // namespace prox::sta
