#include "sta/flat_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "cells/cell.hpp"
#include "model/stimulus.hpp"
#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "spice/tran.hpp"
#include "spice/vsource.hpp"
#include "waveform/measure.hpp"

namespace prox::sta {

FlatSimResult simulateFlat(
    const Netlist& netlist,
    const std::unordered_map<std::string, Arrival>& inputArrivals,
    double settle) {
  PROX_OBS_COUNT("sta.flat_sim.runs", 1);
  PROX_OBS_COUNT("sta.flat_sim.instances", netlist.instances().size());
  PROX_OBS_SCOPED_TIMER("sta.flat_sim.seconds");
  // 1. Direction/coarse-time prediction: a proximity STA pass supplies each
  //    net's transition direction and a horizon estimate.
  TimingAnalyzer predictor(netlist, DelayMode::Proximity);
  for (const auto& [net, arr] : inputArrivals) {
    predictor.setInputArrival(net, arr);
  }
  predictor.run();

  // 2. Build the flat circuit: one node per net, one transistor-level cell
  //    per instance, pins tied to net nodes with ideal (0 V) sources.
  spice::Circuit ckt;
  auto netNode = [&](const std::string& net) {
    return ckt.node("net." + net);
  };

  // First consumer of each net (for thresholds / stable levels of PIs).
  std::unordered_map<std::string, const Instance*> firstConsumer;
  for (const Instance& inst : netlist.instances()) {
    for (const std::string& net : inst.inputNets) {
      firstConsumer.emplace(net, &inst);
    }
  }

  int tieCounter = 0;
  for (const Instance& inst : netlist.instances()) {
    const cells::CellNets nets =
        cells::buildCell(ckt, inst.cell->gate.spec, inst.name);
    ckt.add<spice::VoltageSource>("tie" + std::to_string(tieCounter++),
                                  nets.out, netNode(inst.outputNet), 0.0);
    for (std::size_t k = 0; k < inst.inputNets.size(); ++k) {
      ckt.add<spice::VoltageSource>("tie" + std::to_string(tieCounter++),
                                    nets.inputs[k],
                                    netNode(inst.inputNets[k]), 0.0);
    }
  }

  // 3. Drive the primary inputs.  Everything is shifted so ramps start after
  //    t = 0 (the DC operating point then captures the true initial state).
  double minStart = 0.0;
  double horizon = 0.0;
  for (const auto& [net, arr] : inputArrivals) {
    const Instance* consumer = firstConsumer.count(net) != 0
                                   ? firstConsumer.at(net)
                                   : nullptr;
    if (consumer == nullptr) continue;
    const auto& gate = consumer->cell->gate;
    model::InputEvent ev{0, arr.edge, arr.time, arr.slope};
    minStart = std::min(minStart,
                        model::rampStart(ev, gate.spec.tech.vdd, gate.thresholds));
    horizon = std::max(horizon, arr.time + arr.slope);
  }
  // Horizon: last predicted output event across the design.
  for (const Instance& inst : netlist.instances()) {
    if (const auto a = predictor.arrival(inst.outputNet)) {
      horizon = std::max(horizon, a->time + a->slope);
    }
  }
  const double shift = 0.3e-9 - minStart;
  const double tstop = horizon + shift + settle;

  for (const auto& [net, arr] : inputArrivals) {
    const Instance* consumer =
        firstConsumer.count(net) != 0 ? firstConsumer.at(net) : nullptr;
    if (consumer == nullptr) continue;  // dangling PI: nothing to drive
    const auto& gate = consumer->cell->gate;
    model::InputEvent ev{0, arr.edge, arr.time + shift, arr.slope};
    ckt.add<spice::VoltageSource>(
        "vpi." + net, netNode(net), spice::kGround,
        model::makeInputWave(ev, gate.spec.tech.vdd, gate.thresholds));
  }
  // Stable primary inputs: non-controlling level of the first consumer.
  for (const std::string& net : netlist.primaryInputs()) {
    if (inputArrivals.count(net) != 0) continue;
    const Instance* consumer =
        firstConsumer.count(net) != 0 ? firstConsumer.at(net) : nullptr;
    if (consumer == nullptr) continue;
    ckt.add<spice::VoltageSource>(
        "vpi." + net, netNode(net), spice::kGround,
        consumer->cell->gate.spec.nonControllingLevel());
  }

  // 4. Transient.
  spice::TranOptions opt;
  opt.tstop = tstop;
  opt.hmax = tstop / 400.0;
  const spice::TranResult tr = spice::transient(ckt, opt);

  // 5. Measure every driven net with its driving cell's thresholds.
  FlatSimResult result;
  for (const std::string& net : netlist.primaryInputs()) {
    if (firstConsumer.count(net) == 0) continue;  // dangling: never built
    result.waves.emplace(net, tr.node(netNode(net)).shifted(-shift));
  }
  for (const Instance& inst : netlist.instances()) {
    const wave::Waveform w = tr.node(netNode(inst.outputNet)).shifted(-shift);
    result.waves.emplace(inst.outputNet, w);
    const auto predicted = predictor.arrival(inst.outputNet);
    if (!predicted) continue;  // net never switches
    const wave::Thresholds& th = inst.cell->gate.thresholds;
    const auto tOut = wave::outputRefTime(w, predicted->edge, th, w.startTime());
    const auto slope = wave::transitionTime(w, predicted->edge, th);
    if (tOut && slope) {
      result.arrivals[inst.outputNet] = Arrival{*tOut, *slope, predicted->edge};
    }
  }
  return result;
}

}  // namespace prox::sta
