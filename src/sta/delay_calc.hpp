#pragma once
// Per-gate delay calculation for the STA: converts input-pin arrival events
// into an output arrival event using either the classic single-switching-
// input model or the paper's proximity model.

#include <limits>
#include <optional>

#include "characterize/characterize.hpp"
#include "sta/netlist.hpp"

namespace prox::sta {

/// A transition event on a net.
struct Arrival {
  double time = 0.0;   ///< reference-threshold crossing [s]
  double slope = 0.0;  ///< full transition time [s]
  wave::Edge edge = wave::Edge::Rising;
};

enum class DelayMode {
  Classic,    ///< dominant input's Delta^(1); proximity ignored
  Proximity,  ///< Algorithm ProximityDelay (Figure 4-1)
};

/// How much of the model the arc actually used.  Anything below Full means
/// the preferred calculation failed (missing/unusable tables, solver error)
/// and a cruder-but-safe estimate was substituted.
enum class ArcQuality {
  Full = 0,      ///< requested mode computed cleanly
  SingleInput,   ///< proximity failed; classic single-input delay used
  SlewEstimate,  ///< even classic failed; latest input's slew as the delay
};

struct DelayCalcOptions {
  /// When true (default), a failed delay calculation degrades down the
  /// ladder Proximity -> Classic -> slew estimate instead of throwing; each
  /// degraded arc is counted under sta.delay_calc.degraded_arcs.  false
  /// restores fail-fast evaluation.
  bool allowDegraded = true;
  /// Largest tolerated out-of-grid clamp (relative to the grid span) before
  /// a proximity lookup is considered too extrapolated to trust and the arc
  /// degrades to the classic model.  Infinity accepts any clamp.
  double maxClampDistance = std::numeric_limits<double>::infinity();
  /// Worker threads for levelized arc evaluation in TimingAnalyzer::run():
  /// 1 (default) = serial on the calling thread, 0 = par::defaultThreadCount(),
  /// N > 1 evaluates each level's arcs as pool tasks.  Arrival times are
  /// bit-identical at any thread count (results commit in instance order).
  int threads = 1;
  /// Cooperative cancellation: when set, levelized evaluation stops issuing
  /// arcs once the token trips and run() unwinds with the token's typed
  /// DiagnosticError (see support/cancel.hpp).  Not owned.
  support::CancelToken* cancel = nullptr;
  /// Structural degradation ladder for defective netlists (cycles,
  /// multiply-driven nets, dangling inputs).  Reject (default): run()
  /// throws DiagnosticError(StructuralError) naming the defect.  Degrade:
  /// levelization breaks each loop deterministically, dangling inputs
  /// become no-event nets, and every issue is reported through
  /// TimingAnalyzer::structuralIssues() with the affected instances counted
  /// as degraded arcs.
  StructuralPolicy structural = StructuralPolicy::Reject;
};

/// Computes the output arrival of @p cell given per-pin input arrivals
/// (nullopt for pins whose nets are stable at the non-controlling level).
/// All switching pins must share a direction; returns nullopt when no pin
/// switches.  Throws std::invalid_argument on mixed directions or pin-count
/// mismatch (caller bugs are never degraded away).  Model-side failures
/// follow opt.allowDegraded; @p quality (when non-null) receives how far
/// down the fallback ladder the arc landed.
std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode,
                                    const DelayCalcOptions& opt,
                                    ArcQuality* quality = nullptr);

std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode);

}  // namespace prox::sta
