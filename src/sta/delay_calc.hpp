#pragma once
// Per-gate delay calculation for the STA: converts input-pin arrival events
// into an output arrival event using either the classic single-switching-
// input model or the paper's proximity model.

#include <optional>

#include "characterize/characterize.hpp"

namespace prox::sta {

/// A transition event on a net.
struct Arrival {
  double time = 0.0;   ///< reference-threshold crossing [s]
  double slope = 0.0;  ///< full transition time [s]
  wave::Edge edge = wave::Edge::Rising;
};

enum class DelayMode {
  Classic,    ///< dominant input's Delta^(1); proximity ignored
  Proximity,  ///< Algorithm ProximityDelay (Figure 4-1)
};

/// Computes the output arrival of @p cell given per-pin input arrivals
/// (nullopt for pins whose nets are stable at the non-controlling level).
/// All switching pins must share a direction; returns nullopt when no pin
/// switches.  Throws std::invalid_argument on mixed directions.
std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode);

}  // namespace prox::sta
