#pragma once
// Batched per-gate delay calculation: the lockstep mirror of
// evaluateGate() used by the levelized STA.
//
// evaluateGate() costs every arc a ProximityCalculator construction (a
// std::function allocation) plus one virtual dual-table lookup per folded
// input.  This evaluator instead runs a whole chunk of same-level arcs in
// lockstep rounds: each round collects, across all arcs, the dual-input
// queries their compositions need next, groups them by dual-table model and
// answers them with one TabulatedDualInputModel::evaluateMany() call per
// model -- grid location amortized, trilinear blends vectorized.
//
// Bit-identity contract: for every arc the produced Arrival and ArcQuality
// equal evaluateGate()'s exactly.  The composition replays Algorithm
// ProximityDelay statement for statement (same query values, same update
// order, same correction arithmetic), and evaluateMany() is bit-identical to
// the scalar lookups.  Any anomaly -- pin-count mismatch, mixed directions,
// missing models, out-of-trust clamps, any exception -- re-runs that arc
// through scalar evaluateGate(), which reproduces the scalar path's
// diagnostics, degradation ladder and counters; propagation-class errors
// (caller bugs, allowDegraded=false) throw out of it naturally.

#include <span>

#include "sta/delay_calc.hpp"

namespace prox::sta {

/// One arc of a batch: a characterized cell and its per-pin input arrivals
/// (same shape evaluateGate() takes).  Both pointees must outlive the call.
struct BatchArc {
  const characterize::CharacterizedGate* cell = nullptr;
  const std::vector<std::optional<Arrival>>* pins = nullptr;
};

struct BatchArcResult {
  std::optional<Arrival> arrival;
  ArcQuality quality = ArcQuality::Full;
};

/// Evaluates arcs[i] into results[i] (spans must be the same length).
/// Classic mode simply loops scalar evaluateGate(); Proximity mode runs the
/// lockstep batched composition described above.  Throws exactly when a
/// scalar evaluateGate() loop over the same arcs would (lowest arc index
/// first).
void evaluateGateBatch(std::span<const BatchArc> arcs, DelayMode mode,
                       const DelayCalcOptions& opt,
                       std::span<BatchArcResult> results);

}  // namespace prox::sta
