#pragma once
// Arrival-time propagation over a combinational netlist.  The analyzer walks
// the arena's levelized schedule, evaluating each gate with the selected
// delay calculation mode.  Nets without an assigned arrival are treated as
// stable at the driving gate's non-controlling level (classic STA "no event"
// semantics).
//
// Hot-path storage is ID-indexed: arrivals live in a NetId-indexed flat
// array, the schedule is a NodeId CSR, and pin reads go through the
// netlist's pin CSR -- no strings or hash lookups per arc.  The string
// overloads (setInputArrival / arrival) resolve names once at the API
// boundary.

#include "sta/delay_calc.hpp"
#include "sta/netlist.hpp"

namespace prox::sta {

class TimingAnalyzer {
 public:
  TimingAnalyzer(const Netlist& netlist, DelayMode mode,
                 DelayCalcOptions options = {})
      : netlist_(netlist), mode_(mode), options_(options) {}

  /// Sets the arrival event of a primary input net.  Throws
  /// std::invalid_argument when @p net is not a declared primary input.
  void setInputArrival(const std::string& net, Arrival arrival);
  void setInputArrival(NetId net, Arrival arrival);

  /// Propagates arrivals through the whole netlist.  Structural defects
  /// (cycles, multiply-driven nets, undriven inputs) follow
  /// options().structural: Reject throws DiagnosticError(StructuralError)
  /// naming the defect; Degrade levelizes anyway (loops broken
  /// deterministically) and records every issue in structuralIssues().
  /// Model-side per-arc failures follow options().allowDegraded: degraded
  /// arcs complete with a cruder estimate and are tallied in degradedArcs().
  void run();

  /// Arrival on @p net after run(); nullopt when the net never switches.
  std::optional<Arrival> arrival(const std::string& net) const;
  std::optional<Arrival> arrival(NetId net) const;

  DelayMode mode() const { return mode_; }
  const DelayCalcOptions& options() const { return options_; }

  /// Arcs of the last run() that fell below ArcQuality::Full, including
  /// instances degraded for structural reasons under
  /// StructuralPolicy::Degrade.
  std::size_t degradedArcs() const { return degradedArcs_; }

  /// Names of the instances degraded by the last run() -- model-side
  /// fallbacks and structural loop-breaks alike -- in declaration order.
  const std::vector<std::string>& degradedArcNames() const {
    return degradedArcNames_;
  }

  /// Structural defects the last run() degraded through (always empty under
  /// StructuralPolicy::Reject -- those throw instead).
  const std::vector<StructuralIssue>& structuralIssues() const {
    return structuralIssues_;
  }

 private:
  /// Grows the NetId-indexed arrival arrays to the netlist's current size.
  void syncArrivalStorage();

  const Netlist& netlist_;
  DelayMode mode_;
  DelayCalcOptions options_;
  // Arrival slots indexed by NetId.value; hasArrival_ distinguishes "never
  // switches" from a default-constructed slot.
  std::vector<Arrival> arrivals_;
  std::vector<char> hasArrival_;
  std::size_t degradedArcs_ = 0;
  std::vector<std::string> degradedArcNames_;
  std::vector<StructuralIssue> structuralIssues_;
};

}  // namespace prox::sta
