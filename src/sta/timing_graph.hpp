#pragma once
// Arrival-time propagation over a combinational netlist.  The analyzer walks
// instances in topological order, evaluating each gate with the selected
// delay calculation mode.  Nets without an assigned arrival are treated as
// stable at the driving gate's non-controlling level (classic STA "no event"
// semantics).

#include <unordered_map>

#include "sta/delay_calc.hpp"
#include "sta/netlist.hpp"

namespace prox::sta {

class TimingAnalyzer {
 public:
  TimingAnalyzer(const Netlist& netlist, DelayMode mode,
                 DelayCalcOptions options = {})
      : netlist_(netlist), mode_(mode), options_(options) {}

  /// Sets the arrival event of a primary input net.
  void setInputArrival(const std::string& net, Arrival arrival);

  /// Propagates arrivals through the whole netlist.  Structural defects
  /// (cycles, multiply-driven nets, undriven inputs) follow
  /// options().structural: Reject throws DiagnosticError(StructuralError)
  /// naming the defect; Degrade levelizes anyway (loops broken
  /// deterministically) and records every issue in structuralIssues().
  /// Model-side per-arc failures follow options().allowDegraded: degraded
  /// arcs complete with a cruder estimate and are tallied in degradedArcs().
  void run();

  /// Arrival on @p net after run(); nullopt when the net never switches.
  std::optional<Arrival> arrival(const std::string& net) const;

  DelayMode mode() const { return mode_; }
  const DelayCalcOptions& options() const { return options_; }

  /// Arcs of the last run() that fell below ArcQuality::Full, including
  /// instances degraded for structural reasons under
  /// StructuralPolicy::Degrade.
  std::size_t degradedArcs() const { return degradedArcs_; }

  /// Names of the instances degraded by the last run() -- model-side
  /// fallbacks and structural loop-breaks alike -- in declaration order.
  const std::vector<std::string>& degradedArcNames() const {
    return degradedArcNames_;
  }

  /// Structural defects the last run() degraded through (always empty under
  /// StructuralPolicy::Reject -- those throw instead).
  const std::vector<StructuralIssue>& structuralIssues() const {
    return structuralIssues_;
  }

 private:
  const Netlist& netlist_;
  DelayMode mode_;
  DelayCalcOptions options_;
  std::unordered_map<std::string, Arrival> arrivals_;
  std::size_t degradedArcs_ = 0;
  std::vector<std::string> degradedArcNames_;
  std::vector<StructuralIssue> structuralIssues_;
};

}  // namespace prox::sta
