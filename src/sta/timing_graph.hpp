#pragma once
// Arrival-time propagation over a combinational netlist.  The analyzer walks
// instances in topological order, evaluating each gate with the selected
// delay calculation mode.  Nets without an assigned arrival are treated as
// stable at the driving gate's non-controlling level (classic STA "no event"
// semantics).

#include <unordered_map>

#include "sta/delay_calc.hpp"
#include "sta/netlist.hpp"

namespace prox::sta {

class TimingAnalyzer {
 public:
  TimingAnalyzer(const Netlist& netlist, DelayMode mode,
                 DelayCalcOptions options = {})
      : netlist_(netlist), mode_(mode), options_(options) {}

  /// Sets the arrival event of a primary input net.
  void setInputArrival(const std::string& net, Arrival arrival);

  /// Propagates arrivals through the whole netlist.  Throws on structural
  /// errors (cycles, undriven nets) surfaced by the netlist.  Model-side
  /// per-arc failures follow options().allowDegraded: degraded arcs complete
  /// with a cruder estimate and are tallied in degradedArcs().
  void run();

  /// Arrival on @p net after run(); nullopt when the net never switches.
  std::optional<Arrival> arrival(const std::string& net) const;

  DelayMode mode() const { return mode_; }
  const DelayCalcOptions& options() const { return options_; }

  /// Arcs of the last run() that fell below ArcQuality::Full.
  std::size_t degradedArcs() const { return degradedArcs_; }

 private:
  const Netlist& netlist_;
  DelayMode mode_;
  DelayCalcOptions options_;
  std::unordered_map<std::string, Arrival> arrivals_;
  std::size_t degradedArcs_ = 0;
};

}  // namespace prox::sta
