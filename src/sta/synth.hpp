#pragma once
// Deterministic synthetic-circuit generator: layered random combinational
// netlists of characterized INV/NAND/NOR cells, sized by (depth, width,
// fanin, gate mix) and reproducible from a single seed.
//
// Determinism contract: every random decision is a pure function of
// (spec.seed, gate index, decision slot) through a counter-based SplitMix64
// mix -- there is no generator state, so the emitted circuit is byte-
// identical no matter in what order (or on how many threads) gates are
// enumerated, and a spec is a complete, portable circuit identity.
//
// Structure: gates are arranged in `depth` layers of `width` gates; layer 0
// consumes only primary inputs and layer L consumes only layer L-1 outputs.
// Because every cell type is inverting and all of one gate's fanins come
// from the same layer, all switching inputs of any gate share a transition
// direction -- the generated circuits are valid single-direction STA
// workloads at any size.  The graphs are acyclic by construction and
// levelize to exactly `depth` levels of `width` instances.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sta/blif.hpp"
#include "sta/netlist.hpp"
#include "sta/timing_graph.hpp"

namespace prox::sta {

/// Parameters of a synthetic circuit.  The spec *is* the circuit: equal
/// specs generate byte-identical BLIF and bit-identical netlists.
struct SynthSpec {
  std::uint64_t seed = 1;
  std::uint32_t depth = 4;          ///< logic layers (levels)
  std::uint32_t width = 8;          ///< gates per layer
  std::uint32_t primaryInputs = 8;  ///< nets feeding layer 0
  std::uint32_t maxFanin = 3;       ///< per-gate fanin cap (>= 1)
  /// Per-net consumer cap; 0 = unbounded.  When set, the spec must satisfy
  /// maxFanout * min(primaryInputs, width) >= width * maxFanin so a legal
  /// assignment always exists (validate() enforces this).
  std::uint32_t maxFanout = 0;
  /// Gate-mix weights.  A gate is an inverter when invWeight wins (fanin 1)
  /// and otherwise a NAND/NOR of fanin 2..maxFanin.  With maxFanin == 1 the
  /// circuit is an inverter chain grid regardless of weights.
  std::uint32_t nandWeight = 6;
  std::uint32_t norWeight = 3;
  std::uint32_t invWeight = 1;
  std::string modelName = "synth";

  /// Total gate count (depth * width).
  std::uint64_t gateCount() const {
    return static_cast<std::uint64_t>(depth) * width;
  }
};

/// Counter-based PRNG underlying every generator decision: a SplitMix64
/// finalizer over (seed, gate index, decision slot).  Exposed so tests and
/// the arrival-pattern helper share the exact stream definition.
std::uint64_t synthRandom(std::uint64_t seed, std::uint64_t gate,
                          std::uint64_t slot);

/// Throws std::invalid_argument when @p spec cannot generate a circuit
/// (zero depth/width/inputs, fanin 0, all-zero mix weights, or an
/// unsatisfiable fanout bound).
void validateSynthSpec(const SynthSpec& spec);

/// The deterministic choice of cell type and source nets for gate @p index
/// (layer-major: index = layer * width + position).  sources are indices
/// into the previous layer's net array (layer 0: primary-input indices).
struct SynthGate {
  cells::GateType type = cells::GateType::Nand;
  std::vector<std::uint32_t> sources;  ///< distinct, size >= 1
};
SynthGate synthGateAt(const SynthSpec& spec, std::uint64_t index);

/// Emits the circuit as BLIF (.model/.inputs/.outputs/.names/.end).  Byte-
/// identical for equal specs.  Net naming: primary inputs "pi<k>", layer L
/// gate j drives "n<L>_<j>"; the last layer's nets are the outputs.
void generateBlif(const SynthSpec& spec, std::ostream& os);
std::string generateBlifString(const SynthSpec& spec);

/// Builds the circuit directly into @p netlist, resolving cells through
/// @p library (which must cover INV plus NAND/NOR for fanins 2..maxFanin;
/// a missing cell throws DiagnosticError(TableMissing) like the BLIF
/// reader).  Returns the output net names in declaration order.
std::vector<std::string> buildNetlist(const SynthSpec& spec,
                                      const GateLibrary& library,
                                      Netlist* netlist);

/// Deterministic primary-input stimulus for a generated circuit: every
/// "pi<k>" gets a rising arrival with time in [0, 256) ps and transition
/// time in [64, 576) ps, both pure functions of (seed, k).  Returned in
/// primary-input index order.
struct SynthArrival {
  std::string net;
  Arrival arrival;
};
std::vector<SynthArrival> synthInputArrivals(const SynthSpec& spec);

}  // namespace prox::sta
