#include "sta/delay_calc.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace prox::sta {

std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode) {
  if (static_cast<int>(pins.size()) != cell.pinCount()) {
    throw std::invalid_argument("evaluateGate: pin count mismatch");
  }
  std::vector<model::InputEvent> events;
  for (std::size_t p = 0; p < pins.size(); ++p) {
    if (!pins[p]) continue;
    events.push_back({static_cast<int>(p), pins[p]->edge, pins[p]->time,
                      pins[p]->slope});
  }
  if (events.empty()) {
    PROX_OBS_COUNT("sta.delay_calc.idle_gates", 1);
    return std::nullopt;
  }
  PROX_OBS_COUNT("sta.delay_calc.arc_evals", 1);
  PROX_OBS_COUNT("sta.delay_calc.switching_pins", events.size());
  for (const auto& ev : events) {
    if (ev.edge != events.front().edge) {
      throw std::invalid_argument(
          "evaluateGate: mixed input directions on one gate");
    }
  }

  const model::ProximityCalculator calc = cell.calculator();
  const model::ProximityResult r = mode == DelayMode::Proximity
                                       ? calc.compute(events)
                                       : calc.computeClassic(events);

  Arrival out;
  out.time = r.outputRefTime;
  out.slope = r.transitionTime;
  out.edge = cell.gate.spec.outputEdgeFor(events.front().edge);
  return out;
}

}  // namespace prox::sta
