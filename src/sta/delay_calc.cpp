#include "sta/delay_calc.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/diagnostic.hpp"

namespace prox::sta {

std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode,
                                    const DelayCalcOptions& opt,
                                    ArcQuality* quality) {
  if (quality != nullptr) *quality = ArcQuality::Full;
  if (static_cast<int>(pins.size()) != cell.pinCount()) {
    throw std::invalid_argument("evaluateGate: pin count mismatch");
  }
  std::vector<model::InputEvent> events;
  for (std::size_t p = 0; p < pins.size(); ++p) {
    if (!pins[p]) continue;
    events.push_back({static_cast<int>(p), pins[p]->edge, pins[p]->time,
                      pins[p]->slope});
  }
  if (events.empty()) {
    PROX_OBS_COUNT("sta.delay_calc.idle_gates", 1);
    return std::nullopt;
  }
  PROX_OBS_COUNT("sta.delay_calc.arc_evals", 1);
  PROX_OBS_COUNT("sta.delay_calc.switching_pins", events.size());
  for (const auto& ev : events) {
    if (ev.edge != events.front().edge) {
      throw std::invalid_argument(
          "evaluateGate: mixed input directions on one gate");
    }
  }

  // Degradation ladder: the requested mode first; on a model-side failure
  // (missing table, lookup clamped beyond the trust distance, solver error)
  // fall to the classic single-input calculation, and as a last resort to a
  // pure slew estimate so the STA always completes with a bounded answer.
  const model::ProximityCalculator calc = cell.calculator();
  ArcQuality q = ArcQuality::Full;
  model::ProximityResult r;
  bool have = false;

  if (mode == DelayMode::Proximity) {
    try {
      // ClampStats are arc-scoped scratch: reset, compute, inspect.  Global
      // clamp accounting lives in the model.dual.clamped_lookups counter.
      cell.dual->resetClampStats();
      r = calc.compute(events);
      const auto& cs = cell.dual->clampStats();
      if (cs.clamped > 0) {
        PROX_OBS_COUNT("sta.delay_calc.clamped_arcs", 1);
      }
      if (cs.maxDistance > opt.maxClampDistance) {
        throw support::DiagnosticError(
            support::makeDiagnostic(
                support::StatusCode::TableOutOfRange,
                "proximity lookup clamped beyond the trust distance")
                .withSite("sta.delay_calc"));
      }
      have = true;
    } catch (const std::exception&) {
      if (!opt.allowDegraded) throw;
      PROX_OBS_COUNT("sta.delay_calc.single_input_fallbacks", 1);
      q = ArcQuality::SingleInput;
    }
  }

  if (!have) {
    try {
      r = calc.computeClassic(events);
      have = true;
    } catch (const std::exception&) {
      if (!opt.allowDegraded) throw;
      q = ArcQuality::SlewEstimate;
    }
  }

  Arrival out;
  out.edge = cell.gate.spec.outputEdgeFor(events.front().edge);
  if (have) {
    out.time = r.outputRefTime;
    out.slope = r.transitionTime;
  } else {
    // Last rung: no model answered, so bound the arc by the latest input's
    // transition -- arrival after one full slew, slope carried through.
    PROX_OBS_COUNT("sta.delay_calc.slew_fallbacks", 1);
    const auto latest = std::max_element(
        events.begin(), events.end(),
        [](const model::InputEvent& a, const model::InputEvent& b) {
          return a.tRef < b.tRef;
        });
    out.time = latest->tRef + latest->tau;
    out.slope = latest->tau;
  }
  if (q != ArcQuality::Full) {
    PROX_OBS_COUNT("sta.delay_calc.degraded_arcs", 1);
    // Pin each degradation to its moment on the evaluating thread's track.
    PROX_OBS_TRACE_INSTANT("sta.arc_degraded");
  }
  if (quality != nullptr) *quality = q;
  return out;
}

std::optional<Arrival> evaluateGate(const characterize::CharacterizedGate& cell,
                                    const std::vector<std::optional<Arrival>>& pins,
                                    DelayMode mode) {
  return evaluateGate(cell, pins, mode, DelayCalcOptions{});
}

}  // namespace prox::sta
