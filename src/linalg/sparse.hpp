#pragma once
// Sparse MNA storage and LU factorization with symbolic/numeric splitting.
//
// Circuit matrices have a *fixed* sparsity pattern: the set of (row, col)
// positions a device may ever write is known from the topology alone, before
// any numeric value exists.  Classic SPICE practice (Nagel's SPICE2; KLU,
// Davis & Palamadai Natarajan) exploits this by splitting the solve into
//   1. a symbolic phase run once per pattern -- ordering, fill-in, workspace
//      allocation -- and
//   2. a numeric phase run once per Newton iteration that only rewrites
//      values through precomputed indices, allocation-free.
//
// Three types implement the split:
//   * SparsityPattern -- CSR position set, built by the devices' declare pass
//     and frozen by finalize().  Entry lookups resolve to *slots* (indices
//     into the value array) that stamping code caches once.
//   * SparseMatrix    -- values bound to a pattern.  setZero()/slot writes
//     never allocate.
//   * SparseLu        -- analyze() (symbolic, allocates every buffer),
//     factor() (numeric with partial pivoting; discovers and freezes the
//     fill structure), refactor() (numeric only, frozen pivot order and
//     structure, allocation-free), solveInPlace() (allocation-free).
//
// The dense LuFactorization in linalg/lu.hpp is retained for general dense
// systems and as the cross-check oracle in sparse_solver_test.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace prox::linalg {

/// Immutable-after-finalize CSR position set.
///
/// Build protocol: reset(n); addEntry(r, c) for every position any writer
/// may touch (duplicates fine); finalize().  After finalize(), slot(r, c)
/// resolves a position to its index in the bound value arrays.
class SparsityPattern {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Starts a new pattern for an n x n system, discarding any previous one.
  /// Buffer capacity is retained so repeated rebuilds do not reallocate.
  void reset(std::size_t n);

  /// Declares position (r, c) as structurally nonzero.  Only valid between
  /// reset() and finalize().  Duplicate declarations are coalesced.
  void addEntry(std::size_t r, std::size_t c);

  /// Sorts, deduplicates, and freezes the CSR structure.
  void finalize();

  bool finalized() const { return finalized_; }
  std::size_t size() const { return n_; }
  std::size_t entryCount() const { return cols_.size(); }

  /// Slot of position (r, c), or npos when the position was never declared.
  /// Binary search within the row; callers on hot paths cache the result.
  std::size_t slot(std::size_t r, std::size_t c) const;

  /// CSR row [begin, end) slot range and per-slot column indices.
  std::size_t rowBegin(std::size_t r) const { return rowPtr_[r]; }
  std::size_t rowEnd(std::size_t r) const { return rowPtr_[r + 1]; }
  const std::vector<std::uint32_t>& columns() const { return cols_; }

  /// Monotonic generation, bumped by every finalize(); lets bound consumers
  /// (cached slots, factorizations) detect a rebuilt pattern cheaply.
  std::uint64_t generation() const { return generation_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> pending_;     // packed (row << 32 | col) keys
  std::vector<std::size_t> rowPtr_;        // n + 1 entries once finalized
  std::vector<std::uint32_t> cols_;        // column index per slot
  std::uint64_t generation_ = 0;
  bool finalized_ = false;
};

/// Values bound to a SparsityPattern.  All mutation paths after bind() are
/// allocation-free.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(const SparsityPattern& pattern) { bind(pattern); }

  /// Binds to @p pattern and zeroes the values.  The pattern must outlive
  /// the matrix and be finalized.
  void bind(const SparsityPattern& pattern);

  const SparsityPattern& pattern() const { return *pattern_; }
  bool bound() const { return pattern_ != nullptr; }
  std::size_t size() const { return pattern_ != nullptr ? pattern_->size() : 0; }

  /// Zeroes every structural entry without touching the structure.
  void setZero();

  /// Value cell of @p slot (from SparsityPattern::slot or a cached copy).
  double& at(std::size_t slot) { return values_[slot]; }
  double at(std::size_t slot) const { return values_[slot]; }

  /// Adds @p v at position (r, c).  The position must have been declared;
  /// slow path (binary search) intended for tests and cold code.
  void add(std::size_t r, std::size_t c, double v);

  /// Value at (r, c); structural zeros read as 0.0.
  double value(std::size_t r, std::size_t c) const;

  /// Largest absolute structural value (0 for an empty matrix).
  double maxAbs() const;

  /// Dense copy, for cross-checks and debugging.
  Matrix toDense() const;

  /// y = A * x (sizes must match).  Test/verification helper.
  Vector multiply(const Vector& x) const;

  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }

 private:
  const SparsityPattern* pattern_ = nullptr;
  std::vector<double> values_;
};

/// Sparse LU with partial pivoting, split into symbolic and numeric phases.
///
/// Lifecycle:
///   analyze(pattern)      once per pattern: allocates every workspace and
///                         output buffer (worst-case sized, so the numeric
///                         phases below never allocate);
///   factor(a)             full numeric factorization: chooses the pivot
///                         order, computes the fill structure, freezes both;
///   refactor(a)           numeric-only refactorization over the frozen
///                         pivot order and structure; returns false when a
///                         frozen pivot has become numerically unusable
///                         (caller falls back to factor());
///   solveInPlace(b)       forward/back substitution, b is overwritten with
///                         the solution.
class SparseLu {
 public:
  /// Symbolic phase: sizes every buffer for @p pattern.  Invalidates any
  /// previous factorization.
  void analyze(const SparsityPattern& pattern);

  /// Full numeric factorization of @p a (bound to the analyzed pattern):
  /// partial (row) pivoting, structure discovery, freeze.  Returns false if
  /// the matrix is numerically singular (pivot below @p pivotTol times the
  /// matrix scale).
  bool factor(const SparseMatrix& a, double pivotTol = 1e-13);

  /// Numeric refactorization with the frozen pivot order and fill structure.
  /// Allocation-free.  Returns false (leaving the factorization invalid)
  /// when no structure is frozen yet or a frozen pivot falls below
  /// @p pivotTol times the matrix scale; callers then retry with factor().
  bool refactor(const SparseMatrix& a, double pivotTol = 1e-13);

  /// Solves A x = b in place (b becomes x).  valid() must hold.
  /// Allocation-free.
  void solveInPlace(Vector& b) const;

  bool valid() const { return valid_; }

  /// Drops the frozen pivot order + fill structure along with the numeric
  /// factorization: the next numeric pass must go through factor(), which
  /// re-pivots from scratch.  Keeps every buffer from analyze(), so nothing
  /// is freed or reallocated.  Used between independent runs that share one
  /// solver workspace, so a run's pivoting can never depend on the values
  /// an earlier run froze.
  void invalidateStructure() {
    structureFrozen_ = false;
    valid_ = false;
  }

  /// True once factor() has frozen a pivot order + structure for the
  /// analyzed pattern (refactor() is then meaningful).
  bool analyzed() const { return analyzedGeneration_ != 0; }
  std::size_t size() const { return n_; }

  /// Structural nonzeros in L + U (fill included).  Valid after factor().
  std::size_t fillCount() const;

  /// Heap allocations performed by this object so far (analyze and any
  /// capacity growth).  The numeric phases must never advance this; the
  /// spice.solve.allocs counter and the allocation-freedom test read it.
  std::uint64_t allocCount() const { return allocs_; }

 private:
  void freezeStructure();
  bool numericRefactor(const SparseMatrix& a, double pivotTol);

  std::size_t n_ = 0;
  const SparsityPattern* pattern_ = nullptr;
  std::uint64_t analyzedGeneration_ = 0;  // pattern generation at analyze()

  // Dense scratch for factor(): values plus per-row structure bitsets.
  std::vector<double> dense_;            // n * n, row-major
  std::vector<std::uint64_t> bits_;      // n rows * wordsPerRow_
  std::size_t wordsPerRow_ = 0;

  // Frozen factorization (pivot order + structure + values).
  std::vector<std::size_t> perm_;        // pivot row k <- original row perm_[k]
  std::vector<std::uint32_t> lCol_;      // L columns, rows concatenated
  std::vector<double> lVal_;
  std::vector<std::size_t> lRowPtr_;     // n + 1
  std::vector<std::uint32_t> uCol_;      // U columns (diagonal first per row)
  std::vector<double> uVal_;
  std::vector<std::size_t> uRowPtr_;     // n + 1
  std::vector<double> invDiag_;          // 1 / U(k, k)

  // Numeric-phase scratch (allocated by analyze()).
  std::vector<double> work_;             // dense accumulator row / solve vec
  bool structureFrozen_ = false;
  bool valid_ = false;
  std::uint64_t allocs_ = 0;
};

}  // namespace prox::linalg
