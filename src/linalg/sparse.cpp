#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "support/fault_injection.hpp"

namespace prox::linalg {

// ---------------------------------------------------------------------------
// SparsityPattern

void SparsityPattern::reset(std::size_t n) {
  n_ = n;
  pending_.clear();
  finalized_ = false;
}

void SparsityPattern::addEntry(std::size_t r, std::size_t c) {
  if (finalized_) {
    throw std::logic_error("SparsityPattern::addEntry: pattern is finalized");
  }
  if (r >= n_ || c >= n_) {
    throw std::out_of_range("SparsityPattern::addEntry: index out of range");
  }
  pending_.push_back((static_cast<std::uint64_t>(r) << 32) |
                     static_cast<std::uint64_t>(c));
}

void SparsityPattern::finalize() {
  std::sort(pending_.begin(), pending_.end());
  pending_.erase(std::unique(pending_.begin(), pending_.end()),
                 pending_.end());

  rowPtr_.assign(n_ + 1, 0);
  cols_.clear();
  cols_.reserve(pending_.size());
  for (const std::uint64_t key : pending_) {
    const auto r = static_cast<std::size_t>(key >> 32);
    ++rowPtr_[r + 1];
    cols_.push_back(static_cast<std::uint32_t>(key & 0xffffffffu));
  }
  for (std::size_t r = 0; r < n_; ++r) rowPtr_[r + 1] += rowPtr_[r];
  pending_.clear();
  ++generation_;
  finalized_ = true;
}

std::size_t SparsityPattern::slot(std::size_t r, std::size_t c) const {
  if (!finalized_) {
    throw std::logic_error("SparsityPattern::slot: pattern not finalized");
  }
  if (r >= n_ || c >= n_) return npos;
  const auto first = cols_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r]);
  const auto last = cols_.begin() + static_cast<std::ptrdiff_t>(rowPtr_[r + 1]);
  const auto it = std::lower_bound(first, last, static_cast<std::uint32_t>(c));
  if (it == last || *it != static_cast<std::uint32_t>(c)) return npos;
  return static_cast<std::size_t>(it - cols_.begin());
}

// ---------------------------------------------------------------------------
// SparseMatrix

void SparseMatrix::bind(const SparsityPattern& pattern) {
  if (!pattern.finalized()) {
    throw std::logic_error("SparseMatrix::bind: pattern not finalized");
  }
  pattern_ = &pattern;
  values_.assign(pattern.entryCount(), 0.0);
}

void SparseMatrix::setZero() {
  std::fill(values_.begin(), values_.end(), 0.0);
}

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  const std::size_t s = pattern_->slot(r, c);
  if (s == SparsityPattern::npos) {
    throw std::logic_error("SparseMatrix::add: position not in pattern");
  }
  values_[s] += v;
}

double SparseMatrix::value(std::size_t r, std::size_t c) const {
  const std::size_t s = pattern_->slot(r, c);
  return s == SparsityPattern::npos ? 0.0 : values_[s];
}

double SparseMatrix::maxAbs() const {
  double m = 0.0;
  for (const double v : values_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix SparseMatrix::toDense() const {
  const std::size_t n = size();
  Matrix d(n, n);
  const auto& cols = pattern_->columns();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t s = pattern_->rowBegin(r); s < pattern_->rowEnd(r); ++s) {
      d(r, cols[s]) = values_[s];
    }
  }
  return d;
}

Vector SparseMatrix::multiply(const Vector& x) const {
  const std::size_t n = size();
  if (x.size() != n) {
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  }
  Vector y(n, 0.0);
  const auto& cols = pattern_->columns();
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t s = pattern_->rowBegin(r); s < pattern_->rowEnd(r); ++s) {
      acc += values_[s] * x[cols[s]];
    }
    y[r] = acc;
  }
  return y;
}

// ---------------------------------------------------------------------------
// SparseLu

namespace {
// Tracks whether a vector resize actually moved/grew the heap buffer, so
// allocCount() reflects real allocations, not no-op resizes.
template <typename T>
bool resizeGrew(std::vector<T>& v, std::size_t n) {
  const bool grew = n > v.capacity();
  v.resize(n);
  return grew;
}
}  // namespace

void SparseLu::analyze(const SparsityPattern& pattern) {
  pattern_ = &pattern;
  n_ = pattern.size();
  analyzedGeneration_ = pattern.generation();
  wordsPerRow_ = (n_ + 63) / 64;

  // Every buffer is sized for the worst case (full fill) once, so factor(),
  // refactor() and solveInPlace() never allocate.
  std::uint64_t grown = 0;
  grown += resizeGrew(dense_, n_ * n_);
  grown += resizeGrew(bits_, n_ * wordsPerRow_);
  grown += resizeGrew(perm_, n_);
  grown += resizeGrew(lRowPtr_, n_ + 1);
  grown += resizeGrew(uRowPtr_, n_ + 1);
  grown += resizeGrew(invDiag_, n_);
  grown += resizeGrew(work_, n_);
  grown += resizeGrew(lCol_, n_ * n_ / 2 + n_);
  grown += resizeGrew(lVal_, n_ * n_ / 2 + n_);
  grown += resizeGrew(uCol_, n_ * n_ / 2 + n_);
  grown += resizeGrew(uVal_, n_ * n_ / 2 + n_);
  allocs_ += grown;

  structureFrozen_ = false;
  valid_ = false;
}

std::size_t SparseLu::fillCount() const {
  return lRowPtr_[n_] + uRowPtr_[n_];
}

bool SparseLu::factor(const SparseMatrix& a, double pivotTol) {
  PROX_OBS_COUNT("linalg.sparse.factorizations", 1);
  // Full factors are rare (first solve / pivot fallback), so every one is
  // timed; the latency distribution sits next to refactor_ns in the report.
  PROX_OBS_SCOPED_HIST_NS("linalg.sparse.factor_ns");
  if (pattern_ == nullptr || &a.pattern() != pattern_ ||
      a.pattern().generation() != analyzedGeneration_) {
    analyze(a.pattern());
  }
  valid_ = false;
  structureFrozen_ = false;
  if (PROX_FAULT_POINT("linalg.lu.factor", SingularLu)) {
    PROX_OBS_COUNT("linalg.sparse.injected_faults", 1);
    PROX_OBS_COUNT("linalg.sparse.singular", 1);
    return false;
  }
  const std::size_t n = n_;
  const std::size_t w = wordsPerRow_;

  // Scatter the CSR values into the dense scratch and the structure bitsets.
  std::memset(dense_.data(), 0, n * n * sizeof(double));
  std::memset(bits_.data(), 0, n * w * sizeof(std::uint64_t));
  const auto& cols = pattern_->columns();
  const double* av = a.data();
  for (std::size_t r = 0; r < n; ++r) {
    double* drow = dense_.data() + r * n;
    std::uint64_t* brow = bits_.data() + r * w;
    for (std::size_t s = pattern_->rowBegin(r); s < pattern_->rowEnd(r); ++s) {
      const std::uint32_t c = cols[s];
      drow[c] = av[s];
      brow[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
    perm_[r] = r;
  }

  const double scale = std::max(a.maxAbs(), 1.0);
  const double tiny = pivotTol * scale;

  // Right-looking elimination with partial pivoting.  Numeric updates run
  // over *structural* positions (the bitsets), so the frozen structure is a
  // superset of every possible numeric nonzero -- exact numeric
  // cancellation cannot poke holes refactor() would later fall through.
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivotRow = k;
    double pivotMag = std::fabs(dense_[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(dense_[r * n + k]);
      if (mag > pivotMag) {
        pivotMag = mag;
        pivotRow = r;
      }
    }
    if (pivotMag < tiny) {
      PROX_OBS_COUNT("linalg.sparse.singular", 1);
      return false;
    }
    if (pivotRow != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(dense_[k * n + c], dense_[pivotRow * n + c]);
      }
      for (std::size_t j = 0; j < w; ++j) {
        std::swap(bits_[k * w + j], bits_[pivotRow * w + j]);
      }
      std::swap(perm_[k], perm_[pivotRow]);
    }

    const double* krow = dense_.data() + k * n;
    const std::uint64_t* kbits = bits_.data() + k * w;
    const double inv = 1.0 / krow[k];
    for (std::size_t r = k + 1; r < n; ++r) {
      std::uint64_t* rbits = bits_.data() + r * w;
      if ((rbits[k >> 6] & (std::uint64_t{1} << (k & 63))) == 0) continue;
      double* rrow = dense_.data() + r * n;
      const double f = rrow[k] * inv;
      rrow[k] = f;  // L factor
      // Structural update: row r inherits row k's U structure past column k.
      for (std::size_t j = k >> 6; j < w; ++j) {
        std::uint64_t word = kbits[j];
        if (j == (k >> 6)) word &= ~((std::uint64_t{2} << (k & 63)) - 1);
        if (word == 0) continue;
        rbits[j] |= word;
        std::uint64_t scan = word;
        const std::size_t base = j << 6;
        while (scan != 0) {
          const unsigned bit =
              static_cast<unsigned>(__builtin_ctzll(scan));
          scan &= scan - 1;
          const std::size_t c = base + bit;
          rrow[c] -= f * krow[c];
        }
      }
    }
  }

  freezeStructure();
  valid_ = true;
  return true;
}

void SparseLu::freezeStructure() {
  // Compress the dense LU scratch into frozen CSR-style L and U rows.  The
  // structure comes from the bitsets (symbolic), the values from the dense
  // scratch; positions that are structurally nonzero but numerically zero
  // keep their place so refactor() stays exact for any future values.
  const std::size_t n = n_;
  const std::size_t w = wordsPerRow_;
  std::size_t ln = 0;
  std::size_t un = 0;
  for (std::size_t k = 0; k < n; ++k) {
    lRowPtr_[k] = ln;
    uRowPtr_[k] = un;
    const double* krow = dense_.data() + k * n;
    const std::uint64_t* kbits = bits_.data() + k * w;
    // Diagonal first in the U row, so solve/refactor read it at uRowPtr_[k].
    uCol_[un] = static_cast<std::uint32_t>(k);
    uVal_[un] = krow[k];
    ++un;
    for (std::size_t j = 0; j < w; ++j) {
      std::uint64_t scan = kbits[j];
      const std::size_t base = j << 6;
      while (scan != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(scan));
        scan &= scan - 1;
        const std::size_t c = base + bit;
        if (c < k) {
          lCol_[ln] = static_cast<std::uint32_t>(c);
          lVal_[ln] = krow[c];
          ++ln;
        } else if (c > k) {
          uCol_[un] = static_cast<std::uint32_t>(c);
          uVal_[un] = krow[c];
          ++un;
        }
      }
    }
    invDiag_[k] = 1.0 / krow[k];
  }
  lRowPtr_[n] = ln;
  uRowPtr_[n] = un;
  structureFrozen_ = true;
}

bool SparseLu::refactor(const SparseMatrix& a, double pivotTol) {
  if (!structureFrozen_ || &a.pattern() != pattern_ ||
      a.pattern().generation() != analyzedGeneration_) {
    return false;
  }
  PROX_OBS_COUNT("linalg.sparse.refactorizations", 1);
  // Refactors run ~10M times per characterization at ~200ns each, so only
  // every 16th call pays the two clock reads; the histogram still sees an
  // unbiased sample of the latency distribution.
  PROX_OBS_SCOPED_HIST_NS_SAMPLED("linalg.sparse.refactor_ns", 4);
  if (PROX_FAULT_POINT("linalg.lu.factor", SingularLu)) {
    PROX_OBS_COUNT("linalg.sparse.injected_faults", 1);
    PROX_OBS_COUNT("linalg.sparse.singular", 1);
    valid_ = false;
    return false;
  }
  return numericRefactor(a, pivotTol);
}

bool SparseLu::numericRefactor(const SparseMatrix& a, double pivotTol) {
  valid_ = false;
  const std::size_t n = n_;
  const double scale = std::max(a.maxAbs(), 1.0);
  const double tiny = pivotTol * scale;

  const auto& cols = pattern_->columns();
  const double* av = a.data();
  double* wk = work_.data();

  // Up-looking (Doolittle) elimination over the frozen structure: for each
  // pivot row k, scatter original row perm_[k], eliminate through the frozen
  // L columns in ascending order, gather L and U values back out.
  for (std::size_t k = 0; k < n; ++k) {
    // Clear exactly the union structure of LU row k, then scatter A's row.
    for (std::size_t s = lRowPtr_[k]; s < lRowPtr_[k + 1]; ++s) {
      wk[lCol_[s]] = 0.0;
    }
    for (std::size_t s = uRowPtr_[k]; s < uRowPtr_[k + 1]; ++s) {
      wk[uCol_[s]] = 0.0;
    }
    const std::size_t src = perm_[k];
    for (std::size_t s = pattern_->rowBegin(src); s < pattern_->rowEnd(src);
         ++s) {
      wk[cols[s]] = av[s];
    }
    for (std::size_t s = lRowPtr_[k]; s < lRowPtr_[k + 1]; ++s) {
      const std::size_t c = lCol_[s];
      const double f = wk[c] * invDiag_[c];
      lVal_[s] = f;
      if (f == 0.0) continue;
      // U row c: diagonal at uRowPtr_[c] is skipped (it produced f).
      for (std::size_t t = uRowPtr_[c] + 1; t < uRowPtr_[c + 1]; ++t) {
        wk[uCol_[t]] -= f * uVal_[t];
      }
    }
    const double diag = wk[k];
    if (std::fabs(diag) < tiny) {
      // The frozen pivot order is numerically stale for these values; the
      // caller falls back to a full factor() with fresh pivoting.
      PROX_OBS_COUNT("linalg.sparse.refactor_pivot_fallbacks", 1);
      return false;
    }
    for (std::size_t s = uRowPtr_[k]; s < uRowPtr_[k + 1]; ++s) {
      uVal_[s] = wk[uCol_[s]];
    }
    invDiag_[k] = 1.0 / diag;
  }
  valid_ = true;
  return true;
}

void SparseLu::solveInPlace(Vector& b) const {
  if (!valid_) {
    throw std::runtime_error("SparseLu::solveInPlace: not factored");
  }
  if (b.size() != n_) {
    throw std::invalid_argument("SparseLu::solveInPlace: rhs size mismatch");
  }
  const std::size_t n = n_;
  // work_ doubles as the permuted forward-substitution vector; solveInPlace
  // is const to callers, so cast the scratch (single-threaded use per
  // workspace by contract).
  double* y = const_cast<double*>(work_.data());

  // L y = P b (L has unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    double acc = b[perm_[k]];
    for (std::size_t s = lRowPtr_[k]; s < lRowPtr_[k + 1]; ++s) {
      acc -= lVal_[s] * y[lCol_[s]];
    }
    y[k] = acc;
  }
  // U x = y; x lands directly in b (no column permutation).
  for (std::size_t ki = n; ki-- > 0;) {
    double acc = y[ki];
    for (std::size_t s = uRowPtr_[ki] + 1; s < uRowPtr_[ki + 1]; ++s) {
      acc -= uVal_[s] * b[uCol_[s]];
    }
    b[ki] = acc * invDiag_[ki];
  }
}

}  // namespace prox::linalg
