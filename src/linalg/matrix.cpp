#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace prox::linalg {

double norm2(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double normInf(const Vector& v) {
  double s = 0.0;
  for (double x : v) s = std::max(s, std::fabs(x));
  return s;
}

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("linalg::subtract: size mismatch");
  }
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Vector Matrix::multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix::multiply: size mismatch");
  }
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::maxAbs() const {
  double s = 0.0;
  for (double x : data_) s = std::max(s, std::fabs(x));
  return s;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << (r + 1 < m.rows() ? ";\n" : "]");
  }
  return os;
}

}  // namespace prox::linalg
