#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/registry.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"

namespace prox::linalg {

bool LuFactorization::factor(const Matrix& a, double pivotTol) {
  PROX_OBS_COUNT("linalg.lu.factorizations", 1);
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  if (PROX_FAULT_POINT("linalg.lu.factor", SingularLu)) {
    PROX_OBS_COUNT("linalg.lu.injected_faults", 1);
    PROX_OBS_COUNT("linalg.lu.singular", 1);
    valid_ = false;
    return false;
  }
  const std::size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  permSign_ = 1;
  valid_ = false;

  const double scale = std::max(lu_.maxAbs(), 1.0);
  const double tiny = pivotTol * scale;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the row with the largest |entry| in column k.
    std::size_t pivotRow = k;
    double pivotMag = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > pivotMag) {
        pivotMag = mag;
        pivotRow = r;
      }
    }
    if (pivotMag < tiny) {  // numerically singular
      PROX_OBS_COUNT("linalg.lu.singular", 1);
      return false;
    }

    if (pivotRow != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivotRow, c));
      std::swap(perm_[k], perm_[pivotRow]);
      permSign_ = -permSign_;
    }

    const double inv = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = lu_(r, k) * inv;
      lu_(r, k) = f;  // store L factor in the lower triangle
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
  valid_ = true;
  return true;
}

Vector LuFactorization::solve(const Vector& b) const {
  if (!valid_) throw std::runtime_error("LuFactorization::solve: not factored");
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("LuFactorization::solve: rhs size mismatch");
  }
  Vector x(n);
  // Apply the permutation and forward-substitute through L (unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back-substitute through U.
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

double LuFactorization::determinant() const {
  if (!valid_) throw std::runtime_error("LuFactorization::determinant: not factored");
  double det = permSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  LuFactorization lu;
  if (!lu.factor(a)) {
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::SingularMatrix,
                                "linalg::solve: singular matrix")
            .withSite("linalg.solve"));
  }
  return lu.solve(b);
}

}  // namespace prox::linalg
