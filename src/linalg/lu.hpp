#pragma once
// LU factorization with partial pivoting, tuned for repeated solves of
// small-to-medium MNA systems inside Newton-Raphson loops.

#include "linalg/matrix.hpp"

namespace prox::linalg {

/// In-place LU factorization with partial (row) pivoting.
///
/// After a successful factor(), solve() may be called any number of times with
/// different right-hand sides.  The factorization owns a copy of the matrix,
/// so the caller's matrix may be re-stamped immediately.
class LuFactorization {
 public:
  /// Factors @p a.  Returns false if the matrix is numerically singular
  /// (pivot magnitude below @p pivotTol times the matrix scale).
  bool factor(const Matrix& a, double pivotTol = 1e-13);

  /// Solves A x = b using the stored factors.  factor() must have succeeded.
  Vector solve(const Vector& b) const;

  /// Determinant of the factored matrix (product of pivots with sign).
  /// Valid only after a successful factor().
  double determinant() const;

  bool valid() const { return valid_; }
  std::size_t size() const { return lu_.rows(); }

 private:
  Matrix lu_;                 // combined L (unit lower) and U factors
  std::vector<std::size_t> perm_;  // row permutation
  int permSign_ = 1;
  bool valid_ = false;
};

/// One-shot convenience: solves A x = b.  Throws std::runtime_error if the
/// system is singular.
Vector solve(const Matrix& a, const Vector& b);

}  // namespace prox::linalg
