#pragma once
// Dense linear algebra primitives for modified-nodal-analysis (MNA) systems.
//
// Circuit matrices in this project are small (tens of unknowns: a CMOS gate,
// its drivers, and a handful of parasitics), so a dense, cache-friendly
// row-major matrix with partial-pivoting LU is both simpler and faster than a
// sparse solver at this scale.  All storage is value-semantic and owned by the
// object (C++ Core Guidelines R.1/R.11: no naked new).

#include <cassert>
#include <cstddef>
#include <iosfwd>
#include <vector>

namespace prox::linalg {

/// A dynamically sized vector of doubles with a few conveniences used by the
/// solver code.  Thin wrapper over std::vector so that arithmetic helpers can
/// live next to the type without polluting the global namespace.
using Vector = std::vector<double>;

/// Euclidean norm of @p v.
double norm2(const Vector& v);

/// Infinity norm (largest absolute entry) of @p v.
double normInf(const Vector& v);

/// Element-wise a - b. Sizes must match.
Vector subtract(const Vector& a, const Vector& b);

/// Row-major dense matrix of doubles.
///
/// Invariants: rows() * cols() == storage size; indices passed to operator()
/// are in range (checked by assert in debug builds).
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a square n x n matrix, zero-initialized.
  static Matrix square(std::size_t n) { return Matrix(n, n); }

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Resets every entry to zero without reallocating.  Used once per Newton
  /// iteration before devices re-stamp their conductances.
  void setZero();

  /// Resizes to rows x cols and zeroes the content.
  void resize(std::size_t rows, std::size_t cols);

  /// Matrix-vector product y = A*x.  x.size() must equal cols().
  Vector multiply(const Vector& x) const;

  /// Largest absolute entry; used for scaling heuristics.
  double maxAbs() const;

  /// Raw storage access for tight solver loops.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Prints a matrix in a human-readable grid; intended for debugging and tests.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace prox::linalg
