#include "spice/tran.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "spice/op.hpp"
#include "support/cancel.hpp"
#include "support/diagnostic.hpp"

namespace prox::spice {

wave::Waveform TranResult::node(NodeId node) const {
  wave::Waveform w;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    w.append(times_[i], ckt_->nodeVoltage(solutions_[i], node));
  }
  return w;
}

wave::Waveform TranResult::node(const std::string& name) const {
  const auto id = ckt_->findNode(name);
  if (!id) throw std::invalid_argument("TranResult::node: unknown node " + name);
  return node(*id);
}

TranResult transient(Circuit& ckt, const TranOptions& opt) {
  if (!(opt.tstop > 0.0)) throw std::invalid_argument("transient: tstop <= 0");
  PROX_OBS_COUNT("spice.tran.runs", 1);
  PROX_OBS_SCOPED_TIMER("spice.tran.seconds");
  ckt.finalize();

  const double hmax = opt.hmax > 0.0 ? opt.hmax : opt.tstop / 200.0;

  // One solver workspace for the whole run: the sparse system, factorization
  // and iterate buffers are allocated here once and reused by the initial
  // operating point and every Newton solve of every timestep.  A caller-owned
  // workspace carries those allocations (and the symbolic analysis) across
  // runs; resetNumeric() forgets the previous run's factorization and pivot
  // order so this run's numerics cannot depend on it.
  NewtonWorkspace localWs;
  NewtonWorkspace& ws = opt.workspace != nullptr ? *opt.workspace : localWs;
  ws.bind(ckt);
  ws.resetNumeric();

  // Initial condition: DC operating point with sources evaluated at t = 0.
  OpOptions opOpt;
  opOpt.newton = opt.newton;
  opOpt.time = 0.0;
  auto x0 = operatingPoint(ckt, opOpt, nullptr, ws);
  if (!x0) {
    PROX_OBS_COUNT("spice.tran.initial_op_failures", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::InitialOpFailed,
                                "transient: initial operating point failed")
            .withSite("spice.tran"));
  }
  linalg::Vector x = *x0;

  for (const auto& dev : ckt.devices()) dev->startTransient(x);

  // Breakpoints inside (0, tstop): the stepper lands on each exactly and
  // takes one backward-Euler step right after it.
  std::vector<double> bps;
  for (double b : ckt.breakpoints()) {
    if (b > 0.0 && b < opt.tstop) bps.push_back(b);
  }
  std::size_t bpIdx = 0;

  std::vector<double> times{0.0};
  std::vector<linalg::Vector> solutions{x};

  const std::size_t nv = static_cast<std::size_t>(ckt.voltageUnknownCount());
  double t = 0.0;
  double h = hmax / 64.0;  // conservative first step
  bool nextStepBE = true;  // damp startup the same way as post-breakpoint
  // Voltage movement seen at the last dv-rejection.  When halving the step
  // does not shrink the movement, the jump is memoryless (e.g. a floating
  // stack node re-equilibrating through gmin after its path turns off) and
  // must be accepted rather than chased to a timestep underflow.
  double lastRejectDv = -1.0;
  // Last rung of the recovery ladder: once engaged, the rest of the run
  // integrates with backward Euler only (trapezoidal ringing on stiff
  // systems is the classic cause of unrecoverable step collapse).
  bool beOnly = false;

  StampContext sc;
  sc.transient = true;

  // Predictor buffer reused across steps (swapped with x on accept, so both
  // vectors keep their capacity for the whole run).
  linalg::Vector xNew;

  while (t < opt.tstop - 1e-21) {
    // Cancellation poll point: once per accepted-or-rejected step attempt,
    // so a Ctrl-C or --timeout aborts a long transient within one timestep.
    support::pollCancellation("spice.tran");
    // Clamp the proposed step to the horizon and the next breakpoint.
    double hTry = std::min({h, hmax, opt.tstop - t});
    while (bpIdx < bps.size() && bps[bpIdx] <= t + 1e-21) ++bpIdx;
    bool hitBreakpoint = false;
    if (bpIdx < bps.size() && t + hTry >= bps[bpIdx] - 1e-21) {
      hTry = bps[bpIdx] - t;
      hitBreakpoint = true;
    }

    sc.time = t + hTry;
    sc.dt = hTry;
    sc.trapezoidal = opt.trapezoidal && !nextStepBE && !beOnly;

    xNew.assign(x.begin(), x.end());  // previous solution as predictor
    NewtonStatus st;
    // Plain halving handles routine non-convergence; the per-step recovery
    // ladder (damping tightening, gmin ramp) only engages once the step has
    // collapsed near hmin and halving is clearly not the cure.
    const bool desperate = opt.recovery.enabled &&
                           hTry <= opt.recovery.ladderStepFactor * opt.hmin;
    if (desperate) {
      PROX_OBS_COUNT("spice.tran.recovery.ladder_solves", 1);
      const RecoveryOutcome ro =
          solveNewtonRecover(ckt, xNew, sc, opt.newton, opt.recovery, ws);
      st = ro.status;
      if (st.converged && ro.rung != RecoveryRung::Plain) {
        PROX_OBS_COUNT("spice.tran.recovery.recovered_steps", 1);
      }
    } else {
      st = solveNewton(ckt, xNew, sc, opt.newton, ws);
    }

    bool reject = !st.converged;
    double dv = 0.0;
    if (!reject) {
      for (std::size_t i = 0; i < nv; ++i) {
        dv = std::max(dv, std::fabs(xNew[i] - x[i]));
      }
      // Enforce dense sampling through transitions, but never stall: once the
      // step is within an epsilon of hmin the move is accepted as-is, and a
      // movement that did not shrink with the step is memoryless -- refusing
      // it forever would underflow the timestep.
      if (dv > opt.dvMax && hTry > 16.0 * opt.hmin &&
          !(lastRejectDv >= 0.0 && dv > 0.8 * lastRejectDv)) {
        reject = true;
        lastRejectDv = dv;
      }
    }

    if (reject) {
      PROX_OBS_COUNT("spice.tran.steps_rejected", 1);
      if (st.converged) {
        PROX_OBS_COUNT("spice.tran.rejects_dv", 1);
      } else {
        PROX_OBS_COUNT("spice.tran.rejects_nonconverged", 1);
      }
      if (std::getenv("PROX_TRAN_DEBUG") != nullptr) {
        std::fprintf(stderr,
                     "tran reject: t=%g hTry=%g conv=%d singular=%d iters=%d "
                     "dv=%g\n",
                     t, hTry, st.converged, st.singular, st.iterations, dv);
      }
      PROX_OBS_COUNT("spice.tran.step_halvings", 1);
      h = hTry / 2.0;
      if (h < opt.hmin) {
        // Final recovery rung before giving up: restart the step at a sane
        // size with backward-Euler-only integration for the rest of the run.
        if (opt.recovery.enabled && opt.trapezoidal && !beOnly) {
          beOnly = true;
          h = hmax / 64.0;
          lastRejectDv = -1.0;
          PROX_OBS_COUNT("spice.tran.recovery.be_fallbacks", 1);
          continue;
        }
        // Diagnose the underflow: report what the last Newton solve did at
        // this timestep instead of silently giving up after the halvings.
        PROX_OBS_COUNT("spice.tran.underflows", 1);
        char msg[256];
        std::snprintf(msg, sizeof(msg),
                      "transient: timestep underflow at t = %g (h = %g < hmin "
                      "= %g; last step: Newton %s after %d iteration%s%s%s",
                      t, h, opt.hmin,
                      st.converged ? "converged" : "did not converge",
                      st.iterations, st.iterations == 1 ? "" : "s",
                      st.singular ? ", singular Jacobian" : "",
                      st.converged ? ", rejected by dv cap)" : ")");
        throw support::DiagnosticError(
            support::makeDiagnostic(support::StatusCode::TimestepUnderflow,
                                    msg)
                .withSite("spice.tran"));
      }
      continue;
    }

    // Accept.
    PROX_OBS_COUNT("spice.tran.steps_accepted", 1);
    lastRejectDv = -1.0;
    for (const auto& dev : ckt.devices()) dev->acceptStep(xNew, sc.time, hTry);
    t = sc.time;
    std::swap(x, xNew);
    times.push_back(t);
    solutions.push_back(x);

    if (hitBreakpoint) {
      PROX_OBS_COUNT("spice.tran.breakpoints_hit", 1);
      ++bpIdx;
      nextStepBE = true;   // damp the slope discontinuity
      h = std::min(h, hmax / 64.0);
    } else {
      nextStepBE = false;
      // Grow gently when the step was easy for both Newton and the dv cap.
      if (st.iterations <= 10 && dv < 0.5 * opt.dvMax) {
        h = std::min(hTry * 1.5, hmax);
      } else {
        h = hTry;
      }
    }
  }

  return TranResult(ckt, std::move(times), std::move(solutions));
}

}  // namespace prox::spice
