#include "spice/capacitor.hpp"

#include <stdexcept>

#include "spice/stamp_util.hpp"

namespace prox::spice {

Capacitor::Capacitor(std::string name, NodeId n1, NodeId n2, double farads)
    : Device(std::move(name)), n1_(n1), n2_(n2), farads_(farads) {
  if (farads < 0.0) throw std::invalid_argument("Capacitor: negative value");
}

double Capacitor::voltageAcross(const linalg::Vector& x) const {
  const double v1 = n1_ == kGround ? 0.0 : x[static_cast<std::size_t>(n1_ - 1)];
  const double v2 = n2_ == kGround ? 0.0 : x[static_cast<std::size_t>(n2_ - 1)];
  return v1 - v2;
}

void Capacitor::declareStamp(linalg::SparsityPattern& p) const {
  detail::declareConductance(p, n1_, n2_);
}

void Capacitor::bindStamp(const linalg::SparsityPattern& p) {
  slots_ = detail::bindConductance(p, n1_, n2_);
}

void Capacitor::stamp(const StampArgs& a) {
  if (!a.transient || a.dt <= 0.0 || farads_ == 0.0) {
    return;  // open circuit in DC; zero-valued caps never conduct
  }
  // Companion model: i(t) = Geq * v(t) - Ieq, a conductance in parallel with
  // a current source determined by the previous timepoint.
  //   trapezoidal:     Geq = 2C/h, Ieq = Geq * vPrev + iPrev
  //   backward Euler:  Geq =  C/h, Ieq = Geq * vPrev
  lastTrap_ = a.trapezoidal;
  const double geq = (a.trapezoidal ? 2.0 : 1.0) * farads_ / a.dt;
  const double ieq = geq * vPrev_ + (a.trapezoidal ? iPrev_ : 0.0);
  detail::stampConductance(a.g, slots_, geq);
  detail::stampCurrent(a.rhs, n1_, ieq);
  detail::stampCurrent(a.rhs, n2_, -ieq);
}

void Capacitor::startTransient(const linalg::Vector& x) {
  vPrev_ = voltageAcross(x);
  iPrev_ = 0.0;  // DC steady state: no capacitor current
}

void Capacitor::acceptStep(const linalg::Vector& x, double /*time*/, double dt) {
  if (dt <= 0.0 || farads_ == 0.0) return;
  const double vNew = voltageAcross(x);
  // Recover the branch current consistent with the companion used by the most
  // recent stamp() for this step (trapezoidal or backward Euler).
  if (lastTrap_) {
    iPrev_ = (2.0 * farads_ / dt) * (vNew - vPrev_) - iPrev_;
  } else {
    iPrev_ = (farads_ / dt) * (vNew - vPrev_);
  }
  vPrev_ = vNew;
}

}  // namespace prox::spice
