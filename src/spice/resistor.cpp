#include "spice/resistor.hpp"

#include <stdexcept>

#include "spice/stamp_util.hpp"

namespace prox::spice {

Resistor::Resistor(std::string name, NodeId n1, NodeId n2, double ohms)
    : Device(std::move(name)), n1_(n1), n2_(n2), ohms_(ohms) {
  if (!(ohms > 0.0)) throw std::invalid_argument("Resistor: non-positive value");
}

void Resistor::setResistance(double ohms) {
  if (!(ohms > 0.0)) throw std::invalid_argument("Resistor: non-positive value");
  ohms_ = ohms;
}

void Resistor::declareStamp(linalg::SparsityPattern& p) const {
  detail::declareConductance(p, n1_, n2_);
}

void Resistor::bindStamp(const linalg::SparsityPattern& p) {
  slots_ = detail::bindConductance(p, n1_, n2_);
}

void Resistor::stamp(const StampArgs& a) {
  detail::stampConductance(a.g, slots_, 1.0 / ohms_);
}

double Resistor::current(const Circuit& ckt, const linalg::Vector& x) const {
  return (ckt.nodeVoltage(x, n1_) - ckt.nodeVoltage(x, n2_)) / ohms_;
}

}  // namespace prox::spice
