#pragma once
// Damped Newton-Raphson solver for the nonlinear MNA system.  Shared by the
// operating-point, DC-sweep and transient analyses.
//
// Two entry points:
//   * solveNewton       -- one plain solve; reports a typed status.
//   * solveNewtonRecover -- the fault-tolerance ladder: on failure of the
//     plain solve it escalates through damping tightening and a gmin ramp
//     before reporting failure.  Each rung attempt and recovery is counted
//     in the observability registry (spice.newton.recovery.*).
//
// Both take a NewtonWorkspace: the reusable sparse system (matrix, RHS,
// iterate buffers, LU factorization) bound once per circuit and carried
// across every iteration and timestep of an analysis, so the hot loop is
// allocation-free.  The convenience overloads without a workspace create a
// transient one (cold paths and tests only).

#include "linalg/sparse.hpp"
#include "spice/circuit.hpp"
#include "support/diagnostic.hpp"

namespace prox::spice {

struct NewtonOptions {
  int maxIterations = 100;
  double vAbsTol = 1e-6;   ///< absolute tolerance on node voltages [V]
  double iAbsTol = 1e-9;   ///< absolute tolerance on branch currents [A]
  double relTol = 1e-3;    ///< relative tolerance on all unknowns
  double maxVoltageStep = 0.5;  ///< per-iteration damping limit on voltages [V]
  double gmin = 1e-12;     ///< shunt conductance to ground on every node [S]
  /// Same-Jacobian fast path: when the entry iterate of a solve is within
  /// this distance (max over node voltages, [V]) of the iterate the current
  /// numeric factorization was computed at -- and the stamp context is
  /// unchanged -- the first iteration reuses that factorization instead of
  /// refactoring.  Iteration 2 onward always refactors, so a stalled reuse
  /// step self-corrects.  Set to 0 to disable.
  double jacobianReuseTol = 1e-4;
  /// Transient-only widening of the fast path's stamp-context match: the
  /// cached factorization may also be reused when the current timestep
  /// differs from the one it was computed at by at most this relative
  /// amount.  The iterate-distance guard above still applies, and iteration
  /// 2 onward always refactors, so a chord step taken with a slightly-stale
  /// dt self-corrects exactly like one taken with a stale iterate.  Set to
  /// 0 (the default) to require an exact dt match.
  double chordDtRelTol = 0.0;
};

/// Time/integration context for device stamping, shared across iterations.
struct StampContext {
  double time = 0.0;
  double dt = 0.0;
  bool transient = false;
  bool trapezoidal = true;
  double srcScale = 1.0;
};

struct NewtonStatus {
  bool converged = false;
  int iterations = 0;
  bool singular = false;
  bool nonFinite = false;  ///< NaN/Inf appeared in the solution vector

  /// Typed view of the outcome for diagnostics.
  support::StatusCode code() const {
    if (converged) return support::StatusCode::Ok;
    if (singular) return support::StatusCode::SingularMatrix;
    if (nonFinite) return support::StatusCode::NonFiniteSolution;
    return support::StatusCode::NewtonNonConverge;
  }
};

/// Escalation policy for solveNewtonRecover and the transient stepper.
struct RecoveryOptions {
  bool enabled = true;
  /// Rung 1 (damping tightening): maxVoltageStep is multiplied by this and
  /// the iteration budget by dampingIterationsFactor.
  double dampingFactor = 0.2;
  int dampingIterationsFactor = 3;
  /// Rung 2 (gmin ramp): solve with a heavy shunt first, then relax it by
  /// gminShrink per stage down to the configured gmin.
  double gminStart = 1e-3;
  double gminShrink = 0.1;
  /// Transient only: the ladder engages once the timestep has been halved to
  /// within ladderStepFactor * hmin (the plain halving cascade runs first).
  double ladderStepFactor = 64.0;
};

/// Which recovery rung produced the final status.
enum class RecoveryRung {
  Plain = 0,     ///< no escalation needed (or ladder disabled)
  Damping = 1,   ///< tightened per-iteration voltage damping
  GminRamp = 2,  ///< gmin continuation from a heavy shunt
};

struct RecoveryOutcome {
  NewtonStatus status;
  RecoveryRung rung = RecoveryRung::Plain;
};

/// Reusable solve state for one circuit, owned by the analysis driver
/// (operating point, DC sweep, transient stepper) and threaded through every
/// solveNewton call.  bind() performs all allocation up front -- matrix
/// values, RHS/iterate buffers, the symbolic LU analysis, cached diagonal
/// slots for the gmin shunt -- so the Newton loop itself never allocates.
/// Allocation events are counted under spice.solve.allocs.
///
/// The workspace also carries the numeric factorization across solves for
/// the same-Jacobian fast path (NewtonOptions::jacobianReuseTol), together
/// with the iterate and stamp context it was computed at.
///
/// Not thread-safe; use one workspace per thread/circuit.
class NewtonWorkspace {
 public:
  /// Binds to @p ckt's finalized pattern.  No-op (beyond dropping the cached
  /// factorization) when already bound to the current pattern generation.
  void bind(const Circuit& ckt);

  /// True when bound to @p ckt's current pattern generation.
  bool boundTo(const Circuit& ckt) const;

  /// Drops the cached numeric factorization; the next solve refactors.
  void invalidateFactor() { factorValid_ = false; }

  /// Forgets every numeric result while keeping the symbolic analysis and
  /// all buffers: drops the cached factorization AND the frozen pivot
  /// structure, so the next solve runs a full factor() with fresh pivoting.
  /// Call between independent runs that share one workspace (adjacent
  /// characterization sweep points); each run is then bit-identical to one
  /// on a freshly bound workspace, while skipping re-analysis and every
  /// buffer allocation.
  void resetNumeric() {
    factorValid_ = false;
    chordRun_ = 0;
    lu.invalidateStructure();
  }

  // Solver-owned buffers, public for the solveNewton implementation.
  linalg::SparseMatrix g;
  linalg::Vector rhs;
  linalg::Vector xNew;
  linalg::Vector xEntry;  ///< recovery-ladder entry-iterate snapshot
  linalg::SparseLu lu;
  std::vector<std::size_t> diagSlots;  ///< slot of (i, i) per voltage unknown

  // Jacobian-reuse bookkeeping: the iterate and stamp context the current
  // numeric factorization was computed at.
  linalg::Vector xFactor;
  bool factorValid_ = false;
  /// Consecutive solves that reused the cached factorization (chord steps);
  /// flushed into the spice.newton.chord_run_length histogram when the run
  /// ends with a fresh (re)factorization.
  std::uint64_t chordRun_ = 0;
  double dtFactor_ = 0.0;
  double gminFactor_ = 0.0;
  bool transientFactor_ = false;
  bool trapezoidalFactor_ = false;

 private:
  const linalg::SparsityPattern* boundPattern_ = nullptr;
  std::uint64_t boundGeneration_ = 0;
};

/// Runs Newton-Raphson starting from @p x (updated in place with the best
/// iterate).  The circuit must be finalized.  @p ws is bound on demand and
/// keeps its numeric factorization across calls.
NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt,
                         NewtonWorkspace& ws);

/// Convenience overload with a solve-local workspace (allocates; cold paths
/// and tests only).
NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt);

/// Plain solve plus the recovery ladder: on non-convergence the solve is
/// retried from the entry iterate with tightened damping, then with a gmin
/// continuation ramp.  On total failure @p x is restored to the entry
/// iterate and the last rung's status is returned.
RecoveryOutcome solveNewtonRecover(const Circuit& ckt, linalg::Vector& x,
                                   const StampContext& sc,
                                   const NewtonOptions& opt,
                                   const RecoveryOptions& recovery,
                                   NewtonWorkspace& ws);

/// Convenience overload with a solve-local workspace.
RecoveryOutcome solveNewtonRecover(const Circuit& ckt, linalg::Vector& x,
                                   const StampContext& sc,
                                   const NewtonOptions& opt,
                                   const RecoveryOptions& recovery = {});

}  // namespace prox::spice
