#pragma once
// Damped Newton-Raphson solver for the nonlinear MNA system.  Shared by the
// operating-point, DC-sweep and transient analyses.

#include "linalg/lu.hpp"
#include "spice/circuit.hpp"

namespace prox::spice {

struct NewtonOptions {
  int maxIterations = 100;
  double vAbsTol = 1e-6;   ///< absolute tolerance on node voltages [V]
  double iAbsTol = 1e-9;   ///< absolute tolerance on branch currents [A]
  double relTol = 1e-3;    ///< relative tolerance on all unknowns
  double maxVoltageStep = 0.5;  ///< per-iteration damping limit on voltages [V]
  double gmin = 1e-12;     ///< shunt conductance to ground on every node [S]
};

/// Time/integration context for device stamping, shared across iterations.
struct StampContext {
  double time = 0.0;
  double dt = 0.0;
  bool transient = false;
  bool trapezoidal = true;
  double srcScale = 1.0;
};

struct NewtonStatus {
  bool converged = false;
  int iterations = 0;
  bool singular = false;
};

/// Runs Newton-Raphson starting from @p x (updated in place with the best
/// iterate).  The circuit must be finalized.
NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt);

}  // namespace prox::spice
