#pragma once
// SPICE-deck parser.  Supports the subset of the language the paper's
// experiments need, so decks written for the original HSPICE runs translate
// directly:
//
//   * comment lines starting with '*', blank lines, '.end'
//   * '+' continuation lines
//   * engineering suffixes: f p n u m k meg g t (case-insensitive)
//   * R<name> n1 n2 value
//   * C<name> n1 n2 value
//   * V<name> n+ n- value            (DC)
//     V<name> n+ n- DC value
//     V<name> n+ n- PWL(t1 v1 t2 v2 ...)
//   * I<name> n+ n- value | DC value | PWL(...)
//   * M<name> d g s b modelname [W=..] [L=..]
//   * .model <name> NMOS|PMOS [LEVEL=1|14] [KP=..] [VTO=..] [LAMBDA=..]
//            [GAMMA=..] [PHI=..] [ALPHA=..] [PC=..] [PV=..]
//     (LEVEL=1 is the Shichman-Hodges square law; LEVEL=14 the Sakurai-
//      Newton alpha-power law)

#include <string>
#include <unordered_map>

#include "spice/capacitor.hpp"
#include "spice/circuit.hpp"
#include "spice/mosfet.hpp"
#include "spice/resistor.hpp"
#include "spice/vsource.hpp"

namespace prox::spice {

/// Result of parsing a deck: the circuit plus name-based device lookup.
struct Netlist {
  Circuit circuit;
  std::unordered_map<std::string, Device*> byName;

  Device* find(const std::string& name) const {
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : it->second;
  }

  template <typename D>
  D* findAs(const std::string& name) const {
    return dynamic_cast<D*>(find(name));
  }
};

/// Parses @p deck.  Throws support::DiagnosticError (ParseError, with the
/// 1-based source line in the diagnostic) on
/// any syntax error.
Netlist parseNetlist(const std::string& deck);

/// Parses a SPICE number with optional engineering suffix ("4u", "100f",
/// "2meg", "1.5k").  Throws support::DiagnosticError (ParseError) on
/// malformed input -- including values whose mantissa-times-suffix product
/// overflows to infinity or underflows to zero -- preserving the underlying
/// conversion failure in the message.  The two-argument overload records the
/// 1-based source line in the diagnostic (-1 = unknown).
double parseSpiceNumber(const std::string& token);
double parseSpiceNumber(const std::string& token, int line);

}  // namespace prox::spice
