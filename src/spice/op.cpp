#include "spice/op.hpp"

namespace prox::spice {

std::optional<linalg::Vector> operatingPoint(Circuit& ckt, const OpOptions& opt,
                                             const linalg::Vector* initialGuess,
                                             NewtonWorkspace& ws) {
  ckt.finalize();
  const std::size_t n = static_cast<std::size_t>(ckt.unknownCount());

  StampContext sc;
  sc.time = opt.time;
  sc.transient = false;

  // 1. Plain Newton from the provided guess (or flat zero).
  {
    linalg::Vector x = initialGuess != nullptr ? *initialGuess
                                               : linalg::Vector(n, 0.0);
    if (solveNewton(ckt, x, sc, opt.newton, ws).converged) return x;
  }

  // 2. Gmin stepping: solve with a heavy shunt everywhere, then relax it.
  {
    linalg::Vector x(n, 0.0);
    NewtonOptions nopt = opt.newton;
    bool ok = true;
    for (double gmin = 1e-3; gmin >= opt.newton.gmin * 0.99; gmin *= 0.1) {
      nopt.gmin = gmin;
      if (!solveNewton(ckt, x, sc, nopt, ws).converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      nopt.gmin = opt.newton.gmin;
      if (solveNewton(ckt, x, sc, nopt, ws).converged) return x;
    }
  }

  // 3. Source stepping: ramp all independent sources from 0 to full value.
  {
    linalg::Vector x(n, 0.0);
    bool ok = true;
    for (int k = 0; k <= 20; ++k) {
      sc.srcScale = static_cast<double>(k) / 20.0;
      if (!solveNewton(ckt, x, sc, opt.newton, ws).converged) {
        ok = false;
        break;
      }
    }
    if (ok) return x;
  }

  return std::nullopt;
}

std::optional<linalg::Vector> operatingPoint(Circuit& ckt, const OpOptions& opt,
                                             const linalg::Vector* initialGuess) {
  NewtonWorkspace ws;
  return operatingPoint(ckt, opt, initialGuess, ws);
}

}  // namespace prox::spice
