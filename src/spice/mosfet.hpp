#pragma once
// Level-1 (Shichman-Hodges) MOSFET with channel-length modulation and body
// effect.  This is the device model generation that matches the paper's era
// (0.8-1.2 um CMOS characterized with HSPICE level 1/2 decks) and captures
// every mechanism the proximity model depends on:
//   * series-stack blocking / parallel-path reinforcement (current equations),
//   * threshold shift of stacked devices whose sources float above the rail
//     (body effect, gamma),
//   * finite output conductance in saturation (lambda).
//
// The device is symmetric: when v(d) < v(s) for an NMOS the roles of drain
// and source are exchanged internally.  PMOS devices are handled by mirroring
// all terminal voltages, evaluating the NMOS equations, and mirroring the
// current back.

#include "spice/circuit.hpp"
#include "spice/stamp_util.hpp"

namespace prox::spice {

/// Drain-current equation family.
enum class MosEquation {
  Level1,      ///< Shichman-Hodges square law (long channel)
  AlphaPower,  ///< Sakurai-Newton alpha-power law (velocity-saturated short
               ///< channel; the paper's reference [14])
};

/// Process/geometry parameters for a MOSFET.
struct MosfetParams {
  bool nmos = true;      ///< true: n-channel, false: p-channel
  MosEquation equation = MosEquation::Level1;
  double w = 4e-6;       ///< channel width [m]
  double l = 0.8e-6;     ///< channel length [m]
  double kp = 60e-6;     ///< transconductance parameter mu*Cox [A/V^2]
  double vt0 = 0.8;      ///< zero-bias threshold voltage [V] (negative for PMOS)
  double lambda = 0.02;  ///< channel-length modulation [1/V]
  double gamma = 0.0;    ///< body-effect coefficient [sqrt(V)]
  double phi = 0.65;     ///< surface potential 2*phi_F [V]

  // Alpha-power-law parameters (used when equation == AlphaPower).
  double alpha = 1.3;    ///< velocity-saturation index (2 = square law)
  double pc = 30e-6;     ///< drive-strength constant P_c [A/V^alpha] per W/L
  double pv = 0.6;       ///< saturation-voltage constant P_v [V^(1-alpha/2)]
};

/// Small-signal linearization of the drain current at one bias point.
struct MosfetOperatingPoint {
  double id = 0.0;   ///< drain current (into drain terminal) [A]
  double gm = 0.0;   ///< d id / d vgs
  double gds = 0.0;  ///< d id / d vds
  double gmb = 0.0;  ///< d id / d vbs
  enum class Region { Cutoff, Triode, Saturation } region = Region::Cutoff;
};

/// Evaluates the level-1 equations for *NMOS-convention* terminal voltages
/// (i.e. already mirrored for PMOS).  Exposed for unit testing.
MosfetOperatingPoint evalLevel1(const MosfetParams& p, double vgs, double vds,
                                double vbs);

/// Evaluates the alpha-power-law equations (Sakurai-Newton, the paper's
/// reference [14]) in NMOS convention:
///   saturation (vds >= vd0): id = (W/L) Pc (vgs - vt)^alpha (1 + lambda vds)
///   triode     (vds <  vd0): id = id_sat(vd0) * (2 - vds/vd0) * (vds/vd0)
/// with vd0 = Pv (vgs - vt)^(alpha/2).  Current and derivatives are
/// continuous across the boundary.  Exposed for unit testing.
MosfetOperatingPoint evalAlphaPower(const MosfetParams& p, double vgs,
                                    double vds, double vbs);

/// Dispatches on p.equation.
MosfetOperatingPoint evalMosfet(const MosfetParams& p, double vgs, double vds,
                                double vbs);

class Mosfet : public Device {
 public:
  Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
         MosfetParams params);

  void stamp(const StampArgs& a) override;
  void declareStamp(linalg::SparsityPattern& p) const override;
  void bindStamp(const linalg::SparsityPattern& p) override;

  const MosfetParams& params() const { return params_; }

  /// Drain current (positive into the drain) at solution @p x.
  double drainCurrent(const Circuit& ckt, const linalg::Vector& x) const;

  /// Strength parameter K = (1/2) mu Cox W/L as defined in the paper.
  double strengthK() const { return 0.5 * params_.kp * params_.w / params_.l; }

 private:
  MosfetOperatingPoint evaluate(double vd, double vg, double vs, double vb,
                                bool* swapped) const;

  NodeId d_;
  NodeId g_;
  NodeId s_;
  NodeId b_;
  MosfetParams params_;
  // Cached slots for rows {d_, s_} x cols {d_, g_, s_, b_}.  The set is
  // closed under the internal drain/source exchange, so both orientations
  // stamp through the same eight positions.
  std::size_t slots_[2][4] = {{detail::kNoSlot, detail::kNoSlot,
                               detail::kNoSlot, detail::kNoSlot},
                              {detail::kNoSlot, detail::kNoSlot,
                               detail::kNoSlot, detail::kNoSlot}};
};

}  // namespace prox::spice
