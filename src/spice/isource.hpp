#pragma once
// Independent current source with DC and PWL drive.  Pure RHS stamp (no
// auxiliary unknown): current flows out of the positive node, through the
// external circuit, into the negative node.

#include "spice/circuit.hpp"
#include "waveform/waveform.hpp"

namespace prox::spice {

class CurrentSource : public Device {
 public:
  /// DC source: @p amps flows np -> (external circuit) -> nn.
  CurrentSource(std::string name, NodeId np, NodeId nn, double amps);

  /// PWL source following @p wave.
  CurrentSource(std::string name, NodeId np, NodeId nn, wave::Waveform wave);

  void stamp(const StampArgs& a) override;
  void collectBreakpoints(std::vector<double>& out) const override;

  double valueAt(double t) const;
  void setDc(double amps);

 private:
  NodeId np_;
  NodeId nn_;
  bool isPwl_ = false;
  double dc_ = 0.0;
  wave::Waveform wave_;
};

}  // namespace prox::spice
