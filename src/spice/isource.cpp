#include "spice/isource.hpp"

#include <stdexcept>

#include "spice/stamp_util.hpp"

namespace prox::spice {

CurrentSource::CurrentSource(std::string name, NodeId np, NodeId nn, double amps)
    : Device(std::move(name)), np_(np), nn_(nn), dc_(amps) {}

CurrentSource::CurrentSource(std::string name, NodeId np, NodeId nn,
                             wave::Waveform wave)
    : Device(std::move(name)), np_(np), nn_(nn), isPwl_(true),
      wave_(std::move(wave)) {
  if (wave_.empty()) throw std::invalid_argument("CurrentSource: empty PWL");
}

double CurrentSource::valueAt(double t) const {
  return isPwl_ ? wave_.value(t) : dc_;
}

void CurrentSource::setDc(double amps) {
  isPwl_ = false;
  dc_ = amps;
}

void CurrentSource::stamp(const StampArgs& a) {
  // Positive current leaves np (injected into nn).
  const double i = a.srcScale * valueAt(a.time);
  detail::stampCurrent(a.rhs, np_, -i);
  detail::stampCurrent(a.rhs, nn_, i);
}

void CurrentSource::collectBreakpoints(std::vector<double>& out) const {
  if (!isPwl_) return;
  for (const auto& s : wave_.samples()) out.push_back(s.t);
}

}  // namespace prox::spice
