#include "spice/netlist.hpp"

#include "spice/isource.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "support/bounded.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"
#include "waveform/waveform.hpp"

namespace prox::spice {

namespace {

constexpr const char* kSite = "spice.netlist";

// Ingestion caps (see support/bounded.hpp for the threat model).  Decks are
// human-scale text: even the million-node synthetic circuits planned for the
// BLIF frontend stay far below these, while a hostile "one endless line"
// deck is rejected before it is buffered whole.
constexpr std::size_t kMaxDeckBytes = 64u << 20;       // 64 MiB
constexpr std::size_t kMaxStatementBytes = 1u << 20;   // joined continuations
constexpr std::size_t kMaxTokensPerStatement = 1u << 16;

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  PROX_OBS_COUNT("spice.netlist.parse_errors", 1);
  throw support::DiagnosticError(
      support::makeDiagnostic(support::StatusCode::ParseError, "netlist: " + msg)
          .withSite(kSite)
          .withLine(line));
}

[[noreturn]] void failNumber(const std::string& msg, int line) {
  PROX_OBS_COUNT("spice.netlist.parse_errors", 1);
  support::Diagnostic d =
      support::makeDiagnostic(support::StatusCode::ParseError, msg)
          .withSite(kSite);
  if (line >= 0) d.withLine(line);
  throw support::DiagnosticError(std::move(d));
}

/// Splits a statement into whitespace-separated tokens, treating '(' ')' ','
/// and '=' as separators that also stand alone where convenient.  "W=4u"
/// becomes {"w", "=", "4u"}; "PWL(0 0 1n 5)" becomes {"pwl", "0", "0", ...}.
std::vector<std::string> tokenize(const std::string& stmt) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(toLower(cur));
      cur.clear();
    }
  };
  for (char c : stmt) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',') {
      flush();
    } else if (c == '=') {
      flush();
      out.push_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

/// Named key=value arguments trailing a card.
std::unordered_map<std::string, double> parseKeyValues(
    const std::vector<std::string>& tok, std::size_t start, int line) {
  std::unordered_map<std::string, double> kv;
  std::size_t i = start;
  while (i < tok.size()) {
    if (i + 1 >= tok.size() || tok[i + 1] != "=") {
      fail(line, "expected key=value, got '" + tok[i] + "'");
    }
    if (i + 2 >= tok.size()) {
      fail(line, "missing value after '" + tok[i] + "='");
    }
    kv[tok[i]] = parseSpiceNumber(tok[i + 2], line);
    i += 3;
  }
  return kv;
}

}  // namespace

double parseSpiceNumber(const std::string& token, int line) {
  if (token.empty()) failNumber("empty number", line);
  if (token.size() > 256) {
    failNumber("oversized number token (" + std::to_string(token.size()) +
                   " bytes)",
               line);
  }
  const std::string t = toLower(token);
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception& e) {
    // Surface the underlying conversion failure instead of swallowing it:
    // out-of-range magnitudes and no-digit tokens are different user errors.
    failNumber("malformed number '" + token + "': " + e.what(), line);
  }
  std::string suffix = t.substr(pos);
  // Strip trailing unit letters after the scale factor (e.g. "100pF", "4um").
  double scale = 1.0;
  if (!suffix.empty()) {
    if (suffix.rfind("meg", 0) == 0) {
      scale = 1e6;
    } else {
      switch (suffix[0]) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default:
          failNumber("unknown suffix in number: " + token, line);
      }
    }
  }
  const double scaled = value * scale;
  // The mantissa and the scale suffix can each be in range while their
  // product is not: "1e308k" overflows to inf and "1e-300f" underflows to 0.
  // Both silently corrupt downstream arithmetic, so both are typed errors.
  if (!std::isfinite(scaled)) {
    failNumber("number out of range (overflows to infinity): '" + token + "'",
               line);
  }
  if (value != 0.0 && scaled == 0.0) {
    failNumber("number out of range (underflows to zero): '" + token + "'",
               line);
  }
  return scaled;
}

double parseSpiceNumber(const std::string& token) {
  return parseSpiceNumber(token, -1);
}

Netlist parseNetlist(const std::string& deck) {
  if (deck.size() > kMaxDeckBytes) {
    PROX_OBS_COUNT("spice.netlist.parse_errors", 1);
    support::failResource(kSite,
                          "deck exceeds the " +
                              std::to_string(kMaxDeckBytes) +
                              "-byte reader cap");
  }
  // Join continuation lines, drop comments, keep 1-based line numbers.
  std::vector<std::pair<int, std::string>> stmts;
  {
    std::istringstream in(deck);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
      ++lineNo;
      // Trim leading whitespace.
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      line = line.substr(first);
      if (line[0] == '*') continue;
      if (line[0] == '+') {
        if (stmts.empty()) fail(lineNo, "continuation with no preceding card");
        if (stmts.back().second.size() + line.size() > kMaxStatementBytes) {
          fail(lineNo, "statement exceeds the " +
                           std::to_string(kMaxStatementBytes) +
                           "-byte cap (runaway continuation?)");
        }
        // Two appends, not `" " + line.substr(1)`: the rvalue operator+ path
        // trips GCC 12's -Wrestrict false positive (PR105329).
        stmts.back().second += ' ';
        stmts.back().second.append(line, 1, std::string::npos);
      } else {
        if (line.size() > kMaxStatementBytes) {
          fail(lineNo, "statement exceeds the " +
                           std::to_string(kMaxStatementBytes) + "-byte cap");
        }
        stmts.emplace_back(lineNo, line);
      }
    }
  }

  Netlist nl;
  std::unordered_map<std::string, MosfetParams> models;

  // Two passes: models first so device cards can reference them regardless of
  // their position in the deck (HSPICE allows either order).
  for (const auto& [lineNo, stmt] : stmts) {
    auto tok = tokenize(stmt);
    if (tok.size() > kMaxTokensPerStatement) {
      PROX_OBS_COUNT("spice.netlist.parse_errors", 1);
      support::failResource(kSite,
                            "statement has more than " +
                                std::to_string(kMaxTokensPerStatement) +
                                " tokens",
                            lineNo);
    }
    if (tok.empty() || tok[0] != ".model") continue;
    if (tok.size() < 3) fail(lineNo, ".model needs a name and a type");
    const std::string name = tok[1];
    const std::string type = tok[2];
    MosfetParams p;
    if (type == "nmos") {
      p.nmos = true;
    } else if (type == "pmos") {
      p.nmos = false;
      p.vt0 = -0.8;  // sensible default sign for PMOS
      p.kp = 25e-6;
    } else {
      fail(lineNo, "unsupported model type '" + type + "'");
    }
    auto kv = parseKeyValues(tok, 3, lineNo);
    for (const auto& [k, v] : kv) {
      if (k == "kp") p.kp = v;
      else if (k == "vto" || k == "vt0") p.vt0 = v;
      else if (k == "lambda") p.lambda = v;
      else if (k == "gamma") p.gamma = v;
      else if (k == "phi") p.phi = v;
      else if (k == "w") p.w = v;
      else if (k == "l") p.l = v;
      else if (k == "alpha") p.alpha = v;
      else if (k == "pc") p.pc = v;
      else if (k == "pv") p.pv = v;
      else if (k == "level") {
        // LEVEL=1 selects the square law; LEVEL=14 the alpha-power law (a
        // nod to the paper's reference [14]).
        if (v == 1.0) p.equation = MosEquation::Level1;
        else if (v == 14.0) p.equation = MosEquation::AlphaPower;
        else fail(lineNo, "unsupported model level");
      }
      else fail(lineNo, "unknown model parameter '" + k + "'");
    }
    models[name] = p;
  }

  for (const auto& [lineNo, stmt] : stmts) {
    auto tok = tokenize(stmt);
    if (tok.empty()) continue;
    const std::string& card = tok[0];
    if (card[0] == '.') {
      if (card == ".model" || card == ".end") continue;
      fail(lineNo, "unsupported control card '" + card + "'");
    }

    const char kind = card[0];
    Device* created = nullptr;
    switch (kind) {
      case 'r': {
        if (tok.size() != 4) fail(lineNo, "resistor: R<name> n1 n2 value");
        created = &nl.circuit.add<Resistor>(card, nl.circuit.node(tok[1]),
                                            nl.circuit.node(tok[2]),
                                            parseSpiceNumber(tok[3], lineNo));
        break;
      }
      case 'c': {
        if (tok.size() != 4) fail(lineNo, "capacitor: C<name> n1 n2 value");
        created = &nl.circuit.add<Capacitor>(card, nl.circuit.node(tok[1]),
                                             nl.circuit.node(tok[2]),
                                             parseSpiceNumber(tok[3], lineNo));
        break;
      }
      case 'v':
      case 'i': {
        if (tok.size() < 4) fail(lineNo, "source: V/I<name> n+ n- spec");
        const NodeId np = nl.circuit.node(tok[1]);
        const NodeId nn = nl.circuit.node(tok[2]);
        const bool isV = kind == 'v';
        if (tok[3] == "pwl") {
          if (tok.size() < 6 || (tok.size() - 4) % 2 != 0) {
            fail(lineNo, "PWL needs an even number of time/value pairs");
          }
          wave::Waveform w;
          for (std::size_t i = 4; i + 1 < tok.size(); i += 2) {
            w.append(parseSpiceNumber(tok[i], lineNo),
                     parseSpiceNumber(tok[i + 1], lineNo));
          }
          created = isV ? static_cast<Device*>(&nl.circuit.add<VoltageSource>(
                              card, np, nn, std::move(w)))
                        : &nl.circuit.add<CurrentSource>(card, np, nn,
                                                         std::move(w));
        } else {
          std::size_t valIdx = 3;
          if (tok[3] == "dc") {
            if (tok.size() != 5) fail(lineNo, "source: V/I<name> n+ n- DC value");
            valIdx = 4;
          } else if (tok.size() != 4) {
            fail(lineNo, "source: V/I<name> n+ n- value");
          }
          const double v = parseSpiceNumber(tok[valIdx], lineNo);
          created = isV ? static_cast<Device*>(
                              &nl.circuit.add<VoltageSource>(card, np, nn, v))
                        : &nl.circuit.add<CurrentSource>(card, np, nn, v);
        }
        break;
      }
      case 'm': {
        if (tok.size() < 6) fail(lineNo, "mosfet: M<name> d g s b model [W=..]");
        auto it = models.find(tok[5]);
        if (it == models.end()) fail(lineNo, "unknown model '" + tok[5] + "'");
        MosfetParams p = it->second;
        auto kv = parseKeyValues(tok, 6, lineNo);
        for (const auto& [k, v] : kv) {
          if (k == "w") p.w = v;
          else if (k == "l") p.l = v;
          else fail(lineNo, "unknown instance parameter '" + k + "'");
        }
        created = &nl.circuit.add<Mosfet>(card, nl.circuit.node(tok[1]),
                                          nl.circuit.node(tok[2]),
                                          nl.circuit.node(tok[3]),
                                          nl.circuit.node(tok[4]), p);
        break;
      }
      default:
        fail(lineNo, "unsupported element '" + card + "'");
    }
    if (created != nullptr) {
      // Resource governance: devices (and the nodes they pull in) are the
      // unit the --max-nodes budget counts for SPICE ingestion.
      support::budgetChargeNodes(1, kSite);
      if (!nl.byName.emplace(card, created).second) {
        fail(lineNo, "duplicate device name '" + card + "'");
      }
    }
  }
  return nl;
}

}  // namespace prox::spice
