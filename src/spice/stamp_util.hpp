#pragma once
// Shared stamping helpers.  Node voltage unknowns live at index (node - 1);
// ground contributes nothing, which these helpers encode once so every device
// stays branch-free at its call sites.

#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"

namespace prox::spice::detail {

/// Adds a conductance @p g between nodes @p n1 and @p n2 (two-terminal stamp).
inline void stampConductance(linalg::Matrix& m, NodeId n1, NodeId n2, double g) {
  const int i = n1 - 1;
  const int j = n2 - 1;
  if (i >= 0) m(i, i) += g;
  if (j >= 0) m(j, j) += g;
  if (i >= 0 && j >= 0) {
    m(i, j) -= g;
    m(j, i) -= g;
  }
}

/// Adds a single matrix entry d(KCL row of nRow)/d(voltage of nCol).
inline void stampEntry(linalg::Matrix& m, NodeId nRow, NodeId nCol, double g) {
  const int i = nRow - 1;
  const int j = nCol - 1;
  if (i >= 0 && j >= 0) m(i, j) += g;
}

/// Injects a current @p i flowing *into* node @p n (adds to the RHS).
inline void stampCurrent(linalg::Vector& rhs, NodeId n, double i) {
  const int k = n - 1;
  if (k >= 0) rhs[static_cast<std::size_t>(k)] += i;
}

}  // namespace prox::spice::detail
