#pragma once
// Shared stamping helpers for the sparse MNA pipeline.  Node voltage
// unknowns live at row (node - 1); ground contributes nothing.
//
// Each matrix position goes through three phases, mirroring the Device
// hooks in circuit.hpp:
//   declare*  -- declareStamp(): register the position in the pattern;
//   bind*     -- bindStamp(): resolve the position to a cached slot;
//   stamp*/addAt -- stamp(): write through the cached slot, branch-free
//                   except for the ground guard folded into the slot value.
// Ground-involving positions bind to kNoSlot and are skipped at stamp time,
// so devices stay branch-light at their call sites.

#include "linalg/sparse.hpp"
#include "spice/circuit.hpp"

namespace prox::spice::detail {

inline constexpr std::size_t kNoSlot = linalg::SparsityPattern::npos;

// -- declare phase ----------------------------------------------------------

/// Declares the four positions of a two-terminal conductance stamp.
inline void declareConductance(linalg::SparsityPattern& p, NodeId n1,
                               NodeId n2) {
  const int i = n1 - 1;
  const int j = n2 - 1;
  if (i >= 0) p.addEntry(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  if (j >= 0) p.addEntry(static_cast<std::size_t>(j), static_cast<std::size_t>(j));
  if (i >= 0 && j >= 0) {
    p.addEntry(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    p.addEntry(static_cast<std::size_t>(j), static_cast<std::size_t>(i));
  }
}

/// Declares the single position d(KCL row of nRow)/d(voltage of nCol).
inline void declareEntry(linalg::SparsityPattern& p, NodeId nRow, NodeId nCol) {
  const int i = nRow - 1;
  const int j = nCol - 1;
  if (i >= 0 && j >= 0) {
    p.addEntry(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
  }
}

/// Declares a position on an auxiliary (branch-current) row or column, which
/// addresses the unknown vector directly instead of via a node.
inline void declareAuxEntry(linalg::SparsityPattern& p, int row, int col) {
  if (row >= 0 && col >= 0) {
    p.addEntry(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
  }
}

// -- bind phase -------------------------------------------------------------

/// Cached slots of a two-terminal conductance stamp (kNoSlot where a
/// terminal is ground).
struct ConductanceSlots {
  std::size_t ii = kNoSlot;
  std::size_t jj = kNoSlot;
  std::size_t ij = kNoSlot;
  std::size_t ji = kNoSlot;
};

inline ConductanceSlots bindConductance(const linalg::SparsityPattern& p,
                                        NodeId n1, NodeId n2) {
  const int i = n1 - 1;
  const int j = n2 - 1;
  ConductanceSlots s;
  if (i >= 0) s.ii = p.slot(static_cast<std::size_t>(i), static_cast<std::size_t>(i));
  if (j >= 0) s.jj = p.slot(static_cast<std::size_t>(j), static_cast<std::size_t>(j));
  if (i >= 0 && j >= 0) {
    s.ij = p.slot(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
    s.ji = p.slot(static_cast<std::size_t>(j), static_cast<std::size_t>(i));
  }
  return s;
}

inline std::size_t bindEntry(const linalg::SparsityPattern& p, NodeId nRow,
                             NodeId nCol) {
  const int i = nRow - 1;
  const int j = nCol - 1;
  if (i < 0 || j < 0) return kNoSlot;
  return p.slot(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
}

inline std::size_t bindAuxEntry(const linalg::SparsityPattern& p, int row,
                                int col) {
  if (row < 0 || col < 0) return kNoSlot;
  return p.slot(static_cast<std::size_t>(row), static_cast<std::size_t>(col));
}

// -- stamp phase ------------------------------------------------------------

/// Adds @p v at a cached slot; kNoSlot (ground) is a no-op.
inline void addAt(linalg::SparseMatrix& m, std::size_t slot, double v) {
  if (slot != kNoSlot) m.at(slot) += v;
}

/// Adds a conductance @p g through a cached two-terminal stamp.
inline void stampConductance(linalg::SparseMatrix& m,
                             const ConductanceSlots& s, double g) {
  if (s.ii != kNoSlot) m.at(s.ii) += g;
  if (s.jj != kNoSlot) m.at(s.jj) += g;
  if (s.ij != kNoSlot) {
    m.at(s.ij) -= g;
    m.at(s.ji) -= g;
  }
}

/// Injects a current @p i flowing *into* node @p n (adds to the RHS).
inline void stampCurrent(linalg::Vector& rhs, NodeId n, double i) {
  const int k = n - 1;
  if (k >= 0) rhs[static_cast<std::size_t>(k)] += i;
}

}  // namespace prox::spice::detail
