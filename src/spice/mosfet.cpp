#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "spice/stamp_util.hpp"

namespace prox::spice {

namespace {
// Tiny drain-source conductance stamped unconditionally.  Keeps internal
// stack nodes weakly connected when every device around them is cut off,
// which is essential for DC convergence of series NMOS/PMOS stacks.
constexpr double kGminDs = 1e-12;
}  // namespace

MosfetOperatingPoint evalLevel1(const MosfetParams& p, double vgs, double vds,
                                double vbs) {
  MosfetOperatingPoint op;
  // Body effect: vt = vt0 + gamma * (sqrt(phi - vbs) - sqrt(phi)); vbs <= 0
  // raises the threshold.  Clamp the sqrt argument for strong forward bias.
  const double phiEff = std::max(p.phi, 1e-3);
  const double arg = std::max(phiEff - vbs, 1e-6);
  const double sArg = std::sqrt(arg);
  const double vt = p.vt0 + p.gamma * (sArg - std::sqrt(phiEff));
  const double dvtDvbs = -p.gamma / (2.0 * sArg);  // d vt / d vbs (<= 0)

  const double beta = p.kp * p.w / p.l;
  const double vov = vgs - vt;  // overdrive

  if (vov <= 0.0) {
    op.region = MosfetOperatingPoint::Region::Cutoff;
    op.id = 0.0;
    op.gm = 0.0;
    op.gds = 0.0;
    op.gmb = 0.0;
    return op;
  }

  const double clm = 1.0 + p.lambda * vds;
  if (vds >= vov) {
    // Saturation: id = (beta/2) vov^2 (1 + lambda vds)
    op.region = MosfetOperatingPoint::Region::Saturation;
    op.id = 0.5 * beta * vov * vov * clm;
    op.gm = beta * vov * clm;
    op.gds = 0.5 * beta * vov * vov * p.lambda;
  } else {
    // Triode: id = beta (vov vds - vds^2/2)(1 + lambda vds)
    op.region = MosfetOperatingPoint::Region::Triode;
    const double core = vov * vds - 0.5 * vds * vds;
    op.id = beta * core * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * (vov - vds) * clm + beta * core * p.lambda;
  }
  // gmb = d id / d vbs = (d id / d vov) * (-d vt / d vbs) = gm * (-dvtDvbs)
  op.gmb = op.gm * (-dvtDvbs);
  return op;
}

MosfetOperatingPoint evalAlphaPower(const MosfetParams& p, double vgs,
                                    double vds, double vbs) {
  MosfetOperatingPoint op;
  const double phiEff = std::max(p.phi, 1e-3);
  const double arg = std::max(phiEff - vbs, 1e-6);
  const double sArg = std::sqrt(arg);
  const double vt = p.vt0 + p.gamma * (sArg - std::sqrt(phiEff));
  const double dvtDvbs = -p.gamma / (2.0 * sArg);

  const double vov = vgs - vt;
  if (vov <= 0.0) {
    op.region = MosfetOperatingPoint::Region::Cutoff;
    return op;
  }

  const double wl = p.w / p.l;
  const double base = wl * p.pc * std::pow(vov, p.alpha);  // drive at this vov
  const double vd0 = std::max(p.pv * std::pow(vov, 0.5 * p.alpha), 1e-9);
  const double clm = 1.0 + p.lambda * vds;

  if (vds >= vd0) {
    op.region = MosfetOperatingPoint::Region::Saturation;
    op.id = base * clm;
    op.gm = p.alpha * base / vov * clm;
    op.gds = base * p.lambda;
  } else {
    // Quadratic interpolation to the origin: current and both first
    // derivatives are continuous at vds = vd0.
    op.region = MosfetOperatingPoint::Region::Triode;
    const double u = vds / vd0;
    op.id = base * clm * (2.0 - u) * u;
    op.gds = base * (p.lambda * (2.0 - u) * u + clm * (2.0 - 2.0 * u) / vd0);
    op.gm = p.alpha * base * clm * u / vov;
  }
  op.gmb = op.gm * (-dvtDvbs);
  return op;
}

MosfetOperatingPoint evalMosfet(const MosfetParams& p, double vgs, double vds,
                                double vbs) {
  return p.equation == MosEquation::AlphaPower ? evalAlphaPower(p, vgs, vds, vbs)
                                               : evalLevel1(p, vgs, vds, vbs);
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               MosfetParams params)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), params_(params) {}

MosfetOperatingPoint Mosfet::evaluate(double vd, double vg, double vs, double vb,
                                      bool* swapped) const {
  const double sigma = params_.nmos ? 1.0 : -1.0;
  // Mirror PMOS into the NMOS convention.
  const double md = sigma * vd;
  const double mg = sigma * vg;
  const double ms = sigma * vs;
  const double mb = sigma * vb;
  // The level-1 model assumes vds >= 0; exchange drain/source otherwise.
  const bool swap = md < ms;
  if (swapped != nullptr) *swapped = swap;
  const double vdEff = swap ? ms : md;
  const double vsEff = swap ? md : ms;

  MosfetParams p = params_;
  p.vt0 = params_.nmos ? params_.vt0 : -params_.vt0;  // NMOS-convention vt0
  return evalMosfet(p, mg - vsEff, vdEff - vsEff, mb - vsEff);
}

void Mosfet::declareStamp(linalg::SparsityPattern& p) const {
  const NodeId rows[2] = {d_, s_};
  const NodeId cols[4] = {d_, g_, s_, b_};
  for (NodeId r : rows) {
    for (NodeId c : cols) detail::declareEntry(p, r, c);
  }
}

void Mosfet::bindStamp(const linalg::SparsityPattern& p) {
  const NodeId rows[2] = {d_, s_};
  const NodeId cols[4] = {d_, g_, s_, b_};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 4; ++c) slots_[r][c] = detail::bindEntry(p, rows[r], cols[c]);
  }
}

void Mosfet::stamp(const StampArgs& a) {
  const auto volt = [&](NodeId n) -> double {
    return n == kGround ? 0.0 : a.x[static_cast<std::size_t>(n - 1)];
  };
  const double vd = volt(d_);
  const double vg = volt(g_);
  const double vs = volt(s_);
  const double vb = volt(b_);

  bool swapped = false;
  const MosfetOperatingPoint op = evaluate(vd, vg, vs, vb, &swapped);

  const double sigma = params_.nmos ? 1.0 : -1.0;
  // Effective (post-swap) drain/source in *actual* node space.
  const NodeId de = swapped ? s_ : d_;
  const NodeId se = swapped ? d_ : s_;
  const double vde = swapped ? vs : vd;
  const double vse = swapped ? vd : vs;

  // Channel current leaving the effective drain, in actual sign convention.
  const double idActual = sigma * op.id;

  // Linearization in actual voltages (the sign mirrors cancel in the
  // conductances): I = gds*vDe + gm*vG + gmb*vB - (gds+gm+gmb)*vSe + C.
  const double gds = op.gds + kGminDs;
  const double gm = op.gm;
  const double gmb = op.gmb;
  const double c = idActual - (gds * vde + gm * vg + gmb * vb -
                               (gds + gm + gmb) * vse);

  // Slot rows/cols are laid out as {d_, s_} x {d_, g_, s_, b_}; pick the
  // orientation matching the effective drain/source.
  const int rDe = swapped ? 1 : 0;
  const int rSe = swapped ? 0 : 1;
  const int cDe = swapped ? 2 : 0;
  const int cSe = swapped ? 0 : 2;
  constexpr int cG = 1;
  constexpr int cB = 3;

  detail::addAt(a.g, slots_[rDe][cDe], gds);
  detail::addAt(a.g, slots_[rDe][cG], gm);
  detail::addAt(a.g, slots_[rDe][cB], gmb);
  detail::addAt(a.g, slots_[rDe][cSe], -(gds + gm + gmb));

  detail::addAt(a.g, slots_[rSe][cDe], -gds);
  detail::addAt(a.g, slots_[rSe][cG], -gm);
  detail::addAt(a.g, slots_[rSe][cB], -gmb);
  detail::addAt(a.g, slots_[rSe][cSe], gds + gm + gmb);

  // Constant part moves to the RHS: G x = rhs with rhs holding injections.
  detail::stampCurrent(a.rhs, de, -c);
  detail::stampCurrent(a.rhs, se, c);
}

double Mosfet::drainCurrent(const Circuit& ckt, const linalg::Vector& x) const {
  const double vd = ckt.nodeVoltage(x, d_);
  const double vg = ckt.nodeVoltage(x, g_);
  const double vs = ckt.nodeVoltage(x, s_);
  const double vb = ckt.nodeVoltage(x, b_);
  bool swapped = false;
  const MosfetOperatingPoint op = evaluate(vd, vg, vs, vb, &swapped);
  const double sigma = params_.nmos ? 1.0 : -1.0;
  // op.id leaves the effective drain; map back to the physical drain.
  return swapped ? -sigma * op.id : sigma * op.id;
}

}  // namespace prox::spice
