#pragma once
// Linear two-terminal capacitor with trapezoidal / backward-Euler companion
// models for transient analysis.  Open circuit in DC analyses.

#include "spice/circuit.hpp"
#include "spice/stamp_util.hpp"

namespace prox::spice {

class Capacitor : public Device {
 public:
  /// @p farads must be non-negative.
  Capacitor(std::string name, NodeId n1, NodeId n2, double farads);

  void stamp(const StampArgs& a) override;
  void declareStamp(linalg::SparsityPattern& p) const override;
  void bindStamp(const linalg::SparsityPattern& p) override;
  void startTransient(const linalg::Vector& x) override;
  void acceptStep(const linalg::Vector& x, double time, double dt) override;

  double capacitance() const { return farads_; }

  /// Capacitor voltage (n1 - n2) at the last accepted step.
  double storedVoltage() const { return vPrev_; }

 private:
  double voltageAcross(const linalg::Vector& x) const;

  NodeId n1_;
  NodeId n2_;
  double farads_;
  detail::ConductanceSlots slots_;
  double vPrev_ = 0.0;  ///< voltage at the last accepted timepoint
  double iPrev_ = 0.0;  ///< current at the last accepted timepoint (n1 -> n2)
  bool lastTrap_ = true;  ///< integration method used by the latest stamp()
};

}  // namespace prox::spice
