#pragma once
// DC sweep of an independent voltage source with solution continuation.
// This is the workhorse behind VTC extraction (Section 2 of the paper).

#include <vector>

#include "spice/op.hpp"
#include "spice/vsource.hpp"
#include "waveform/waveform.hpp"

namespace prox::spice {

struct DcSweepResult {
  std::vector<double> sweepValues;          ///< source values, in sweep order
  std::vector<linalg::Vector> solutions;    ///< one MNA solution per point

  /// Extracts the transfer curve sweep-value -> voltage(node).
  wave::Waveform nodeCurve(const Circuit& ckt, NodeId node) const;
};

/// Sweeps @p src from @p from to @p to in increments of @p step (sign is
/// inferred).  Each point seeds the next (continuation), with a full
/// operating-point recovery when plain Newton fails mid-sweep.
/// Throws std::runtime_error if any point is unsolvable.
DcSweepResult dcSweep(Circuit& ckt, VoltageSource& src, double from, double to,
                      double step, const OpOptions& opt = {});

}  // namespace prox::spice
