#pragma once
// Circuit container for the MNA-based simulator.
//
// The simulator follows the classic SPICE architecture:
//   * a Circuit owns nodes (named, ground = node 0) and devices;
//   * every analysis assembles the modified nodal analysis (MNA) system
//     G x = b at each Newton iteration by asking every device to *stamp*
//     its linearized companion model;
//   * the unknown vector x holds node voltages (excluding ground) followed by
//     auxiliary branch currents (one per voltage source).
//
// Devices are value-owned by the circuit via unique_ptr; add<>() hands back a
// typed reference that stays valid for the circuit's lifetime (devices are
// never removed).

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace prox::spice {

/// Node identifier.  0 is always ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

class Circuit;

/// Everything a device needs to stamp its linearized model into the MNA
/// system for one Newton iteration.  The matrix is sparse with a pattern
/// fixed by Circuit::finalize(); devices write through slot indices cached
/// during their bindStamp() pass, so stamping is allocation- and search-free.
struct StampArgs {
  linalg::SparseMatrix& g;  ///< conductance matrix (nUnknowns x nUnknowns)
  linalg::Vector& rhs;      ///< right-hand side (equivalent current sources)
  const linalg::Vector& x;  ///< current Newton iterate
  double time = 0.0;        ///< simulation time (0 for DC analyses)
  double dt = 0.0;          ///< current timestep (0 for DC analyses)
  bool transient = false;   ///< true when reactive elements must integrate
  bool trapezoidal = true;  ///< trapezoidal vs backward-Euler companions
  double srcScale = 1.0;    ///< source-stepping scale factor in [0, 1]
};

/// Abstract circuit element.
///
/// Devices with memory (capacitors) keep their integration state internally;
/// the analysis drives it through startTransient()/acceptStep().
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Stamps the device's linearized companion model.
  virtual void stamp(const StampArgs& a) = 0;

  /// Declares every matrix position this device may ever write, so the
  /// circuit can freeze the MNA sparsity pattern once per topology.  Called
  /// by Circuit::finalize() after auxiliary indices are assigned.  Devices
  /// that only write the RHS (current sources) keep the empty default.
  virtual void declareStamp(linalg::SparsityPattern& /*p*/) const {}

  /// Caches slot indices into the finalized pattern, so stamp() writes
  /// through direct indices instead of per-call position lookups.  Called by
  /// Circuit::finalize() right after the pattern is frozen.
  virtual void bindStamp(const linalg::SparsityPattern& /*p*/) {}

  /// Number of auxiliary MNA unknowns (branch currents) this device needs.
  virtual int auxVarCount() const { return 0; }

  /// Called once by the circuit to hand the device its auxiliary indices
  /// (positions in the unknown vector).
  virtual void assignAuxIndices(int /*first*/) {}

  /// Called when a transient starts, with the DC operating point solution.
  virtual void startTransient(const linalg::Vector& /*x*/) {}

  /// Called when a transient step is accepted, so integrating devices can
  /// commit their state.  @p dt is the step just taken, ending at @p time.
  virtual void acceptStep(const linalg::Vector& /*x*/, double /*time*/,
                          double /*dt*/) {}

  /// Appends hard time breakpoints (e.g. PWL corners) that the transient
  /// analysis must land on exactly.
  virtual void collectBreakpoints(std::vector<double>& /*out*/) const {}

 private:
  std::string name_;
};

/// A circuit: named nodes plus an ordered list of devices.
class Circuit {
 public:
  Circuit() { nodeNames_.push_back("0"); }

  /// Returns the node with the given name, creating it if necessary.
  /// "0", "gnd" and "GND" all map to ground.
  NodeId node(const std::string& name);

  /// Looks up an existing node without creating it.
  std::optional<NodeId> findNode(const std::string& name) const;

  const std::string& nodeName(NodeId n) const { return nodeNames_.at(static_cast<std::size_t>(n)); }

  /// Total number of nodes, ground included.
  int nodeCount() const { return static_cast<int>(nodeNames_.size()); }

  /// Constructs a device in place and returns a typed reference.
  template <typename D, typename... Args>
  D& add(Args&&... args) {
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    devices_.push_back(std::move(dev));
    dirty_ = true;
    return ref;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Index of node @p n's voltage in the unknown vector, or -1 for ground.
  int unknownIndex(NodeId n) const { return n - 1; }

  /// Finalizes the unknown layout: assigns auxiliary indices to devices,
  /// freezes the MNA sparsity pattern from the devices' declareStamp()
  /// pass, and lets every device cache its stamp slots.  Called
  /// automatically by analyses; idempotent until devices change.
  void finalize();

  /// The frozen MNA sparsity pattern.  Valid after finalize(); its
  /// generation() changes whenever devices are added and finalize() reruns.
  const linalg::SparsityPattern& pattern() const { return pattern_; }

  /// Number of MNA unknowns (node voltages + branch currents).  Valid after
  /// finalize().
  int unknownCount() const { return unknownCount_; }

  /// Number of node-voltage unknowns (nodeCount() - 1).
  int voltageUnknownCount() const { return nodeCount() - 1; }

  /// Voltage of node @p n in solution vector @p x (0 for ground).
  double nodeVoltage(const linalg::Vector& x, NodeId n) const;

  /// Sorted, de-duplicated breakpoints from all devices.
  std::vector<double> breakpoints() const;

 private:
  std::vector<std::string> nodeNames_;
  std::unordered_map<std::string, NodeId> nodesByName_;
  std::vector<std::unique_ptr<Device>> devices_;
  linalg::SparsityPattern pattern_;
  int unknownCount_ = 0;
  bool dirty_ = true;
};

}  // namespace prox::spice
