#pragma once
// Independent voltage source with DC and piecewise-linear (PWL) drive.
// Uses one auxiliary MNA unknown for its branch current, per standard MNA.

#include "spice/circuit.hpp"
#include "spice/stamp_util.hpp"
#include "waveform/waveform.hpp"

namespace prox::spice {

class VoltageSource : public Device {
 public:
  /// DC source of @p volts between @p np (positive) and @p nn (negative).
  VoltageSource(std::string name, NodeId np, NodeId nn, double volts);

  /// PWL source following @p wave (clamped outside the sampled window).
  VoltageSource(std::string name, NodeId np, NodeId nn, wave::Waveform wave);

  void stamp(const StampArgs& a) override;
  void declareStamp(linalg::SparsityPattern& p) const override;
  void bindStamp(const linalg::SparsityPattern& p) override;
  int auxVarCount() const override { return 1; }
  void assignAuxIndices(int first) override { auxIndex_ = first; }
  void collectBreakpoints(std::vector<double>& out) const override;

  /// Source value at time @p t (DC value for DC sources at any time).
  double valueAt(double t) const;

  /// Re-targets the source to a DC level (used by DC sweeps).
  void setDc(double volts);

  /// Replaces the drive waveform (used when re-running a fixture with new
  /// stimulus without rebuilding the circuit).
  void setWaveform(wave::Waveform wave);

  /// Branch current (positive terminal -> through source -> negative) in @p x.
  double branchCurrent(const linalg::Vector& x) const;

 private:
  NodeId np_;
  NodeId nn_;
  bool isPwl_ = false;
  double dc_ = 0.0;
  wave::Waveform wave_;
  int auxIndex_ = -1;
  // Cached slots of the +-1 incidence entries: (np, aux), (aux, np),
  // (nn, aux), (aux, nn); kNoSlot where the terminal is ground.
  std::size_t slotPk_ = detail::kNoSlot;
  std::size_t slotKp_ = detail::kNoSlot;
  std::size_t slotNk_ = detail::kNoSlot;
  std::size_t slotKn_ = detail::kNoSlot;
};

}  // namespace prox::spice
