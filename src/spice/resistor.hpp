#pragma once
// Linear two-terminal resistor.

#include "spice/circuit.hpp"
#include "spice/stamp_util.hpp"

namespace prox::spice {

class Resistor : public Device {
 public:
  /// @p ohms must be positive.
  Resistor(std::string name, NodeId n1, NodeId n2, double ohms);

  void stamp(const StampArgs& a) override;
  void declareStamp(linalg::SparsityPattern& p) const override;
  void bindStamp(const linalg::SparsityPattern& p) override;

  double resistance() const { return ohms_; }
  void setResistance(double ohms);

  /// Current flowing n1 -> n2 for solution @p x.
  double current(const Circuit& ckt, const linalg::Vector& x) const;

 private:
  NodeId n1_;
  NodeId n2_;
  double ohms_;
  detail::ConductanceSlots slots_;
};

}  // namespace prox::spice
