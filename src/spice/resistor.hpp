#pragma once
// Linear two-terminal resistor.

#include "spice/circuit.hpp"

namespace prox::spice {

class Resistor : public Device {
 public:
  /// @p ohms must be positive.
  Resistor(std::string name, NodeId n1, NodeId n2, double ohms);

  void stamp(const StampArgs& a) override;

  double resistance() const { return ohms_; }
  void setResistance(double ohms);

  /// Current flowing n1 -> n2 for solution @p x.
  double current(const Circuit& ckt, const linalg::Vector& x) const;

 private:
  NodeId n1_;
  NodeId n2_;
  double ohms_;
};

}  // namespace prox::spice
