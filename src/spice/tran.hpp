#pragma once
// Adaptive-timestep transient analysis.
//
// Integration: trapezoidal companion models by default (2nd order, A-stable)
// with a backward-Euler step taken immediately after every source breakpoint
// to damp the trapezoidal method's response to slope discontinuities.
// Step control combines three signals:
//   * Newton convergence (non-convergence halves the step),
//   * a per-step node-voltage movement cap (dvMax) that bounds the local
//     truncation error and guarantees dense sampling through transitions,
//   * hard breakpoints from PWL sources that the stepper lands on exactly.

#include <stdexcept>
#include <vector>

#include "spice/newton.hpp"
#include "waveform/waveform.hpp"

namespace prox::spice {

struct TranOptions {
  double tstop = 0.0;      ///< end time [s]; must be positive
  double hmax = 0.0;       ///< max step; 0 selects tstop/200
  double hmin = 1e-18;     ///< absolute minimum step before giving up
  double dvMax = 0.05;     ///< max node-voltage change per accepted step [V]
  bool trapezoidal = true; ///< false forces backward Euler everywhere
  NewtonOptions newton;
  /// Fault-tolerance ladder: once halving approaches hmin, failed steps are
  /// retried with tightened damping and a gmin ramp (solveNewtonRecover);
  /// as a last rung the run switches to BE-only integration before a typed
  /// timestep-underflow diagnostic is raised.  recovery.enabled = false
  /// restores the original fail-fast stepper.
  RecoveryOptions recovery;
  /// Optional caller-owned solver workspace.  When set, the run binds it
  /// (a no-op when already bound to the circuit's pattern) and numerically
  /// resets it instead of allocating a fresh workspace, so repeated
  /// transients over the same circuit -- adjacent characterization sweep
  /// points -- skip the symbolic LU analysis and every buffer allocation.
  /// The reset keeps each run bit-identical to one on a fresh workspace.
  NewtonWorkspace* workspace = nullptr;
};

class TranResult {
 public:
  TranResult(const Circuit& ckt, std::vector<double> times,
             std::vector<linalg::Vector> solutions)
      : ckt_(&ckt), times_(std::move(times)), solutions_(std::move(solutions)) {}

  const std::vector<double>& times() const { return times_; }
  const std::vector<linalg::Vector>& solutions() const { return solutions_; }
  std::size_t pointCount() const { return times_.size(); }

  /// Voltage waveform of @p node over the simulated window.
  wave::Waveform node(NodeId node) const;

  /// Voltage waveform of the node named @p name.
  wave::Waveform node(const std::string& name) const;

 private:
  const Circuit* ckt_;
  std::vector<double> times_;
  std::vector<linalg::Vector> solutions_;
};

/// Runs a transient analysis from t = 0 to opt.tstop.  The circuit's DC
/// operating point at t = 0 provides the initial condition.
/// Throws support::DiagnosticError (a std::runtime_error carrying a typed
/// StatusCode: InitialOpFailed or TimestepUnderflow) when the initial OP
/// fails or a timestep underflows after the recovery ladder is exhausted.
TranResult transient(Circuit& ckt, const TranOptions& opt);

}  // namespace prox::spice
