#include "spice/dcsweep.hpp"

#include <cmath>
#include <stdexcept>

#include "support/cancel.hpp"

namespace prox::spice {

wave::Waveform DcSweepResult::nodeCurve(const Circuit& ckt, NodeId node) const {
  wave::Waveform w;
  for (std::size_t i = 0; i < sweepValues.size(); ++i) {
    w.append(sweepValues[i], ckt.nodeVoltage(solutions[i], node));
  }
  return w;
}

DcSweepResult dcSweep(Circuit& ckt, VoltageSource& src, double from, double to,
                      double step, const OpOptions& opt) {
  if (step <= 0.0) throw std::invalid_argument("dcSweep: step must be positive");
  ckt.finalize();

  DcSweepResult result;
  const double dir = to >= from ? 1.0 : -1.0;
  const int points = static_cast<int>(std::floor(std::fabs(to - from) / step)) + 1;

  StampContext sc;
  sc.time = opt.time;
  linalg::Vector x(static_cast<std::size_t>(ckt.unknownCount()), 0.0);
  bool haveSeed = false;

  // One solver workspace shared by every sweep point (and their
  // operating-point fallbacks).
  NewtonWorkspace ws;
  ws.bind(ckt);
  linalg::Vector trial;

  for (int i = 0; i < points; ++i) {
    // Cancellation poll point: VTC extraction sweeps hundreds of points.
    support::pollCancellation("spice.dcsweep");
    const double v = from + dir * step * i;
    src.setDc(v);
    bool solved = false;
    if (haveSeed) {
      trial.assign(x.begin(), x.end());
      if (solveNewton(ckt, trial, sc, opt.newton, ws).converged) {
        x = trial;
        solved = true;
      }
    }
    if (!solved) {
      auto sol = operatingPoint(ckt, opt, haveSeed ? &x : nullptr, ws);
      if (!sol) {
        throw std::runtime_error("dcSweep: unsolvable point at " +
                                 std::to_string(v) + " V");
      }
      x = *sol;
    }
    haveSeed = true;
    result.sweepValues.push_back(v);
    result.solutions.push_back(x);
  }
  return result;
}

}  // namespace prox::spice
