#include "spice/circuit.hpp"

#include <algorithm>
#include <cmath>

namespace prox::spice {

NodeId Circuit::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = nodesByName_.find(name);
  if (it != nodesByName_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodeNames_.push_back(name);
  nodesByName_.emplace(name, id);
  return id;
}

std::optional<NodeId> Circuit::findNode(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto it = nodesByName_.find(name);
  if (it == nodesByName_.end()) return std::nullopt;
  return it->second;
}

void Circuit::finalize() {
  if (!dirty_) return;
  int aux = voltageUnknownCount();
  for (const auto& dev : devices_) {
    const int n = dev->auxVarCount();
    if (n > 0) {
      dev->assignAuxIndices(aux);
      aux += n;
    }
  }
  unknownCount_ = aux;

  // Freeze the MNA sparsity pattern: the solver's gmin shunt needs every
  // voltage diagonal (which also keeps otherwise-floating rows structurally
  // nonsingular), and each device declares the positions it may write.
  pattern_.reset(static_cast<std::size_t>(unknownCount_));
  for (int i = 0; i < voltageUnknownCount(); ++i) {
    const auto d = static_cast<std::size_t>(i);
    pattern_.addEntry(d, d);
  }
  for (const auto& dev : devices_) dev->declareStamp(pattern_);
  pattern_.finalize();
  for (const auto& dev : devices_) dev->bindStamp(pattern_);

  dirty_ = false;
}

double Circuit::nodeVoltage(const linalg::Vector& x, NodeId n) const {
  if (n == kGround) return 0.0;
  return x[static_cast<std::size_t>(unknownIndex(n))];
}

std::vector<double> Circuit::breakpoints() const {
  std::vector<double> bp;
  for (const auto& dev : devices_) dev->collectBreakpoints(bp);
  std::sort(bp.begin(), bp.end());
  bp.erase(std::unique(bp.begin(), bp.end(),
                       [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
           bp.end());
  return bp;
}

}  // namespace prox::spice
