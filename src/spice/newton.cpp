#include "spice/newton.hpp"

#include <cmath>

#include "obs/registry.hpp"

namespace prox::spice {

NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt) {
  PROX_OBS_COUNT("spice.newton.solves", 1);
  NewtonStatus status;
  const std::size_t n = static_cast<std::size_t>(ckt.unknownCount());
  const std::size_t nv = static_cast<std::size_t>(ckt.voltageUnknownCount());
  if (x.size() != n) x.assign(n, 0.0);

  linalg::Matrix g(n, n);
  linalg::Vector rhs(n, 0.0);
  linalg::LuFactorization lu;

  for (int iter = 1; iter <= opt.maxIterations; ++iter) {
    status.iterations = iter;
    g.setZero();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampArgs args{g, rhs, x, sc.time, sc.dt, sc.transient, sc.trapezoidal,
                   sc.srcScale};
    for (const auto& dev : ckt.devices()) dev->stamp(args);

    // Convergence-aid shunt to ground on every voltage unknown.
    for (std::size_t i = 0; i < nv; ++i) g(i, i) += opt.gmin;

    if (!lu.factor(g)) {
      status.singular = true;
      PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
      PROX_OBS_COUNT("spice.newton.singular", 1);
      return status;
    }
    linalg::Vector xNew = lu.solve(rhs);

    // Damping: cap the largest voltage move per iteration.  Branch currents
    // are left free (they equilibrate instantly once voltages settle).
    double dvMax = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      dvMax = std::max(dvMax, std::fabs(xNew[i] - x[i]));
    }
    double alpha = 1.0;
    if (dvMax > opt.maxVoltageStep) alpha = opt.maxVoltageStep / dvMax;

    bool converged = alpha == 1.0;  // a damped step is never the last one
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = xNew[i] - x[i];
      const double absTol = i < nv ? opt.vAbsTol : opt.iAbsTol;
      if (std::fabs(delta) > absTol + opt.relTol * std::fabs(xNew[i])) {
        converged = false;
      }
      x[i] += alpha * delta;
    }
    if (converged) {
      status.converged = true;
      PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
      return status;
    }
  }
  PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
  PROX_OBS_COUNT("spice.newton.nonconverged", 1);
  return status;
}

}  // namespace prox::spice
