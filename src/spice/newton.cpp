#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "support/cancel.hpp"
#include "support/fault_injection.hpp"

namespace prox::spice {

namespace {
// Counts a resize that actually grew the heap buffer (mirrors the
// accounting inside SparseLu::analyze).
template <typename T>
std::uint64_t growCount(std::vector<T>& v, std::size_t n) {
  const bool grew = n > v.capacity();
  v.resize(n);
  return grew ? 1 : 0;
}
}  // namespace

void NewtonWorkspace::bind(const Circuit& ckt) {
  const linalg::SparsityPattern& p = ckt.pattern();
  if (boundTo(ckt)) {
    invalidateFactor();
    return;
  }
  const std::size_t n = p.size();
  const std::size_t nv = static_cast<std::size_t>(ckt.voltageUnknownCount());

  std::uint64_t allocs = 1;  // SparseMatrix::bind value storage
  const std::uint64_t luBefore = lu.allocCount();
  g.bind(p);
  lu.analyze(p);
  allocs += lu.allocCount() - luBefore;
  allocs += growCount(rhs, n);
  allocs += growCount(xNew, n);
  allocs += growCount(xFactor, n);
  allocs += growCount(xEntry, n);
  allocs += growCount(diagSlots, nv);
  // The (i, i) diagonal of every voltage unknown is declared unconditionally
  // by Circuit::finalize(), so these slots always resolve.
  for (std::size_t i = 0; i < nv; ++i) diagSlots[i] = p.slot(i, i);

  boundPattern_ = &p;
  boundGeneration_ = p.generation();
  factorValid_ = false;
  PROX_OBS_COUNT("spice.solve.allocs", allocs);
}

bool NewtonWorkspace::boundTo(const Circuit& ckt) const {
  return boundPattern_ == &ckt.pattern() &&
         boundGeneration_ == ckt.pattern().generation();
}

NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt,
                         NewtonWorkspace& ws) {
  PROX_OBS_COUNT("spice.newton.solves", 1);
  NewtonStatus status;
  if (PROX_FAULT_POINT("spice.newton", NewtonNonConverge)) {
    PROX_OBS_COUNT("spice.newton.injected_faults", 1);
    PROX_OBS_COUNT("spice.newton.nonconverged", 1);
    return status;
  }
  const std::size_t n = static_cast<std::size_t>(ckt.unknownCount());
  const std::size_t nv = static_cast<std::size_t>(ckt.voltageUnknownCount());
  if (x.size() != n) x.assign(n, 0.0);
  if (!ws.boundTo(ckt)) ws.bind(ckt);

  for (int iter = 1; iter <= opt.maxIterations; ++iter) {
    // Cancellation poll point: one thread-local load when no token is
    // installed, and a circuit this size iterates in microseconds, so a
    // tripped token (Ctrl-C, --timeout) aborts the analysis promptly.
    support::pollCancellation("spice.newton");
    status.iterations = iter;
    ws.g.setZero();
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);

    StampArgs args{ws.g, ws.rhs, x, sc.time, sc.dt, sc.transient,
                   sc.trapezoidal, sc.srcScale};
    for (const auto& dev : ckt.devices()) dev->stamp(args);

    if (iter == 1 && !ws.rhs.empty() &&
        PROX_FAULT_POINT("spice.newton.residual", NanResidual)) {
      PROX_OBS_COUNT("spice.newton.injected_faults", 1);
      ws.rhs[0] = std::numeric_limits<double>::quiet_NaN();
    }

    // Convergence-aid shunt to ground on every voltage unknown, written
    // through the cached diagonal slots.
    for (std::size_t i = 0; i < nv; ++i) ws.g.at(ws.diagSlots[i]) += opt.gmin;

    // Same-Jacobian fast path: when the entry iterate sits within
    // jacobianReuseTol of the iterate the cached factorization was computed
    // at -- under a matching stamp context (method / gmin exact; dt exact,
    // or within chordDtRelTol during a transient; sources only move the
    // RHS) -- the first iteration solves with the previous numeric
    // factorization.  Iteration 2 onward always refactors, so a stalled
    // reuse step falls back to a fresh Jacobian automatically.
    bool reuse = false;
    if (iter == 1 && ws.factorValid_ && ws.lu.valid() &&
        opt.jacobianReuseTol > 0.0 &&
        (sc.dt == ws.dtFactor_ ||
         (opt.chordDtRelTol > 0.0 && sc.transient &&
          std::fabs(sc.dt - ws.dtFactor_) <=
              opt.chordDtRelTol * ws.dtFactor_)) &&
        sc.transient == ws.transientFactor_ &&
        sc.trapezoidal == ws.trapezoidalFactor_ &&
        opt.gmin == ws.gminFactor_) {
      double move = 0.0;
      for (std::size_t i = 0; i < nv; ++i) {
        move = std::max(move, std::fabs(x[i] - ws.xFactor[i]));
      }
      reuse = move <= opt.jacobianReuseTol;
    }
    if (reuse) {
      PROX_OBS_COUNT("spice.refactor.reused", 1);
      ++ws.chordRun_;
    } else {
      // A fresh factorization ends any chord (reuse) run; record its length
      // so the report shows how far the fast path typically carries.
      if (ws.chordRun_ > 0) {
        PROX_OBS_HIST("spice.newton.chord_run_length", ws.chordRun_);
        ws.chordRun_ = 0;
      }
      // Numeric-only refactorization over the frozen pivot order; a full
      // factor (fresh pivoting + structure) only on the first solve or when
      // a frozen pivot degraded.
      bool ok = ws.lu.refactor(ws.g);
      if (!ok) ok = ws.lu.factor(ws.g);
      if (!ok) {
        ws.factorValid_ = false;
        status.singular = true;
        PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
        PROX_OBS_HIST("spice.newton.iterations", status.iterations);
        PROX_OBS_COUNT("spice.newton.singular", 1);
        return status;
      }
      std::copy(x.begin(), x.end(), ws.xFactor.begin());
      ws.factorValid_ = true;
      ws.dtFactor_ = sc.dt;
      ws.gminFactor_ = opt.gmin;
      ws.transientFactor_ = sc.transient;
      ws.trapezoidalFactor_ = sc.trapezoidal;
    }

    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.xNew.begin());
    ws.lu.solveInPlace(ws.xNew);
    linalg::Vector& xNew = ws.xNew;

    // Non-finite guard: a NaN/Inf iterate would otherwise satisfy the
    // convergence comparisons vacuously (every NaN comparison is false) and
    // be reported as converged.  Fail loudly and typed instead.
    for (double v : xNew) {
      if (!std::isfinite(v)) {
        status.nonFinite = true;
        PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
        PROX_OBS_HIST("spice.newton.iterations", status.iterations);
        PROX_OBS_COUNT("spice.newton.nonfinite", 1);
        return status;
      }
    }

    // Damping: cap the largest voltage move per iteration.  Branch currents
    // are left free (they equilibrate instantly once voltages settle).
    double dvMax = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      dvMax = std::max(dvMax, std::fabs(xNew[i] - x[i]));
    }
    double alpha = 1.0;
    if (dvMax > opt.maxVoltageStep) alpha = opt.maxVoltageStep / dvMax;

    bool converged = alpha == 1.0;  // a damped step is never the last one
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = xNew[i] - x[i];
      const double absTol = i < nv ? opt.vAbsTol : opt.iAbsTol;
      if (std::fabs(delta) > absTol + opt.relTol * std::fabs(xNew[i])) {
        converged = false;
      }
      x[i] += alpha * delta;
    }
    if (converged) {
      status.converged = true;
      PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
      PROX_OBS_HIST("spice.newton.iterations", status.iterations);
      return status;
    }
  }
  PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
  PROX_OBS_HIST("spice.newton.iterations", status.iterations);
  PROX_OBS_COUNT("spice.newton.nonconverged", 1);
  return status;
}

NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt) {
  NewtonWorkspace ws;
  return solveNewton(ckt, x, sc, opt, ws);
}

RecoveryOutcome solveNewtonRecover(const Circuit& ckt, linalg::Vector& x,
                                   const StampContext& sc,
                                   const NewtonOptions& opt,
                                   const RecoveryOptions& recovery,
                                   NewtonWorkspace& ws) {
  RecoveryOutcome out;
  if (!ws.boundTo(ckt)) ws.bind(ckt);
  // Entry iterate snapshot in a workspace buffer (allocation-free in steady
  // state); rungs restart from it and total failure restores it.
  ws.xEntry.assign(x.begin(), x.end());

  out.status = solveNewton(ckt, x, sc, opt, ws);
  if (out.status.converged || !recovery.enabled) return out;

  // Rung 1: damping tightening.  Smaller per-iteration voltage moves with a
  // larger iteration budget walk through sharp device nonlinearities that
  // overshoot under the default damping limit.
  {
    PROX_OBS_COUNT("spice.newton.recovery.damping_attempts", 1);
    NewtonOptions tight = opt;
    tight.maxVoltageStep =
        std::max(opt.maxVoltageStep * recovery.dampingFactor, 1e-3);
    tight.maxIterations =
        opt.maxIterations * std::max(recovery.dampingIterationsFactor, 1);
    x.assign(ws.xEntry.begin(), ws.xEntry.end());
    out.status = solveNewton(ckt, x, sc, tight, ws);
    out.rung = RecoveryRung::Damping;
    if (out.status.converged) {
      PROX_OBS_COUNT("spice.newton.recovery.damping_recovered", 1);
      return out;
    }
  }

  // Rung 2: gmin continuation.  A heavy shunt makes the Jacobian strongly
  // diagonally dominant (fixing singular/near-singular systems); relaxing it
  // stage by stage carries the solution to the configured gmin.
  {
    PROX_OBS_COUNT("spice.newton.recovery.gmin_attempts", 1);
    x.assign(ws.xEntry.begin(), ws.xEntry.end());
    NewtonOptions ramp = opt;
    bool ok = true;
    for (double gmin = recovery.gminStart; gmin >= opt.gmin * 0.99;
         gmin *= recovery.gminShrink) {
      ramp.gmin = gmin;
      out.status = solveNewton(ckt, x, sc, ramp, ws);
      if (!out.status.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ramp.gmin = opt.gmin;
      out.status = solveNewton(ckt, x, sc, ramp, ws);
    }
    out.rung = RecoveryRung::GminRamp;
    if (out.status.converged) {
      PROX_OBS_COUNT("spice.newton.recovery.gmin_recovered", 1);
      return out;
    }
  }

  PROX_OBS_COUNT("spice.newton.recovery.exhausted", 1);
  x.assign(ws.xEntry.begin(), ws.xEntry.end());
  return out;
}

RecoveryOutcome solveNewtonRecover(const Circuit& ckt, linalg::Vector& x,
                                   const StampContext& sc,
                                   const NewtonOptions& opt,
                                   const RecoveryOptions& recovery) {
  NewtonWorkspace ws;
  return solveNewtonRecover(ckt, x, sc, opt, recovery, ws);
}

}  // namespace prox::spice
