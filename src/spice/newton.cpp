#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"
#include "support/fault_injection.hpp"

namespace prox::spice {

NewtonStatus solveNewton(const Circuit& ckt, linalg::Vector& x,
                         const StampContext& sc, const NewtonOptions& opt) {
  PROX_OBS_COUNT("spice.newton.solves", 1);
  NewtonStatus status;
  if (PROX_FAULT_POINT("spice.newton", NewtonNonConverge)) {
    PROX_OBS_COUNT("spice.newton.injected_faults", 1);
    PROX_OBS_COUNT("spice.newton.nonconverged", 1);
    return status;
  }
  const std::size_t n = static_cast<std::size_t>(ckt.unknownCount());
  const std::size_t nv = static_cast<std::size_t>(ckt.voltageUnknownCount());
  if (x.size() != n) x.assign(n, 0.0);

  linalg::Matrix g(n, n);
  linalg::Vector rhs(n, 0.0);
  linalg::LuFactorization lu;

  for (int iter = 1; iter <= opt.maxIterations; ++iter) {
    status.iterations = iter;
    g.setZero();
    std::fill(rhs.begin(), rhs.end(), 0.0);

    StampArgs args{g, rhs, x, sc.time, sc.dt, sc.transient, sc.trapezoidal,
                   sc.srcScale};
    for (const auto& dev : ckt.devices()) dev->stamp(args);

    if (iter == 1 && !rhs.empty() &&
        PROX_FAULT_POINT("spice.newton.residual", NanResidual)) {
      PROX_OBS_COUNT("spice.newton.injected_faults", 1);
      rhs[0] = std::numeric_limits<double>::quiet_NaN();
    }

    // Convergence-aid shunt to ground on every voltage unknown.
    for (std::size_t i = 0; i < nv; ++i) g(i, i) += opt.gmin;

    if (!lu.factor(g)) {
      status.singular = true;
      PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
      PROX_OBS_COUNT("spice.newton.singular", 1);
      return status;
    }
    linalg::Vector xNew = lu.solve(rhs);

    // Non-finite guard: a NaN/Inf iterate would otherwise satisfy the
    // convergence comparisons vacuously (every NaN comparison is false) and
    // be reported as converged.  Fail loudly and typed instead.
    for (double v : xNew) {
      if (!std::isfinite(v)) {
        status.nonFinite = true;
        PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
        PROX_OBS_COUNT("spice.newton.nonfinite", 1);
        return status;
      }
    }

    // Damping: cap the largest voltage move per iteration.  Branch currents
    // are left free (they equilibrate instantly once voltages settle).
    double dvMax = 0.0;
    for (std::size_t i = 0; i < nv; ++i) {
      dvMax = std::max(dvMax, std::fabs(xNew[i] - x[i]));
    }
    double alpha = 1.0;
    if (dvMax > opt.maxVoltageStep) alpha = opt.maxVoltageStep / dvMax;

    bool converged = alpha == 1.0;  // a damped step is never the last one
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = xNew[i] - x[i];
      const double absTol = i < nv ? opt.vAbsTol : opt.iAbsTol;
      if (std::fabs(delta) > absTol + opt.relTol * std::fabs(xNew[i])) {
        converged = false;
      }
      x[i] += alpha * delta;
    }
    if (converged) {
      status.converged = true;
      PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
      return status;
    }
  }
  PROX_OBS_COUNT("spice.newton.iterations", status.iterations);
  PROX_OBS_COUNT("spice.newton.nonconverged", 1);
  return status;
}

RecoveryOutcome solveNewtonRecover(const Circuit& ckt, linalg::Vector& x,
                                   const StampContext& sc,
                                   const NewtonOptions& opt,
                                   const RecoveryOptions& recovery) {
  RecoveryOutcome out;
  const linalg::Vector x0 = x;

  out.status = solveNewton(ckt, x, sc, opt);
  if (out.status.converged || !recovery.enabled) return out;

  // Rung 1: damping tightening.  Smaller per-iteration voltage moves with a
  // larger iteration budget walk through sharp device nonlinearities that
  // overshoot under the default damping limit.
  {
    PROX_OBS_COUNT("spice.newton.recovery.damping_attempts", 1);
    NewtonOptions tight = opt;
    tight.maxVoltageStep =
        std::max(opt.maxVoltageStep * recovery.dampingFactor, 1e-3);
    tight.maxIterations =
        opt.maxIterations * std::max(recovery.dampingIterationsFactor, 1);
    x = x0;
    out.status = solveNewton(ckt, x, sc, tight);
    out.rung = RecoveryRung::Damping;
    if (out.status.converged) {
      PROX_OBS_COUNT("spice.newton.recovery.damping_recovered", 1);
      return out;
    }
  }

  // Rung 2: gmin continuation.  A heavy shunt makes the Jacobian strongly
  // diagonally dominant (fixing singular/near-singular systems); relaxing it
  // stage by stage carries the solution to the configured gmin.
  {
    PROX_OBS_COUNT("spice.newton.recovery.gmin_attempts", 1);
    x = x0;
    NewtonOptions ramp = opt;
    bool ok = true;
    for (double gmin = recovery.gminStart; gmin >= opt.gmin * 0.99;
         gmin *= recovery.gminShrink) {
      ramp.gmin = gmin;
      out.status = solveNewton(ckt, x, sc, ramp);
      if (!out.status.converged) {
        ok = false;
        break;
      }
    }
    if (ok) {
      ramp.gmin = opt.gmin;
      out.status = solveNewton(ckt, x, sc, ramp);
    }
    out.rung = RecoveryRung::GminRamp;
    if (out.status.converged) {
      PROX_OBS_COUNT("spice.newton.recovery.gmin_recovered", 1);
      return out;
    }
  }

  PROX_OBS_COUNT("spice.newton.recovery.exhausted", 1);
  x = x0;  // leave the caller's iterate untouched on total failure
  return out;
}

}  // namespace prox::spice
