#pragma once
// DC operating-point analysis with gmin-stepping and source-stepping
// continuation fallbacks (the same ladder HSPICE/ngspice climb when plain
// Newton fails on stacked MOS circuits).

#include <optional>

#include "spice/newton.hpp"

namespace prox::spice {

struct OpOptions {
  NewtonOptions newton;
  /// Time at which time-varying sources are evaluated (transient t=0 uses 0).
  double time = 0.0;
};

/// Computes the DC operating point.  Returns the solution vector, or nullopt
/// when every continuation strategy fails.  @p initialGuess, when provided,
/// seeds the first Newton attempt (useful for sweep continuation).
std::optional<linalg::Vector> operatingPoint(
    Circuit& ckt, const OpOptions& opt = {},
    const linalg::Vector* initialGuess = nullptr);

/// Workspace-threading overload: every Newton attempt solves through @p ws,
/// so a driver (transient, DC sweep) shares one set of solver buffers with
/// its operating-point seeds.
std::optional<linalg::Vector> operatingPoint(Circuit& ckt,
                                             const OpOptions& opt,
                                             const linalg::Vector* initialGuess,
                                             NewtonWorkspace& ws);

}  // namespace prox::spice
