#include "spice/vsource.hpp"

#include <cassert>
#include <stdexcept>

#include "spice/stamp_util.hpp"

namespace prox::spice {

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn, double volts)
    : Device(std::move(name)), np_(np), nn_(nn), dc_(volts) {}

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn,
                             wave::Waveform wave)
    : Device(std::move(name)), np_(np), nn_(nn), isPwl_(true), wave_(std::move(wave)) {
  if (wave_.empty()) throw std::invalid_argument("VoltageSource: empty PWL");
}

double VoltageSource::valueAt(double t) const {
  return isPwl_ ? wave_.value(t) : dc_;
}

void VoltageSource::setDc(double volts) {
  isPwl_ = false;
  dc_ = volts;
}

void VoltageSource::setWaveform(wave::Waveform wave) {
  if (wave.empty()) throw std::invalid_argument("VoltageSource: empty PWL");
  isPwl_ = true;
  wave_ = std::move(wave);
}

void VoltageSource::declareStamp(linalg::SparsityPattern& p) const {
  assert(auxIndex_ >= 0 && "aux indices not assigned");
  const int k = auxIndex_;
  detail::declareAuxEntry(p, np_ - 1, k);
  detail::declareAuxEntry(p, k, np_ - 1);
  detail::declareAuxEntry(p, nn_ - 1, k);
  detail::declareAuxEntry(p, k, nn_ - 1);
}

void VoltageSource::bindStamp(const linalg::SparsityPattern& p) {
  const int k = auxIndex_;
  slotPk_ = detail::bindAuxEntry(p, np_ - 1, k);
  slotKp_ = detail::bindAuxEntry(p, k, np_ - 1);
  slotNk_ = detail::bindAuxEntry(p, nn_ - 1, k);
  slotKn_ = detail::bindAuxEntry(p, k, nn_ - 1);
}

void VoltageSource::stamp(const StampArgs& a) {
  assert(auxIndex_ >= 0 && "circuit not finalized");
  // KCL rows: branch current leaves np, enters nn.
  detail::addAt(a.g, slotPk_, 1.0);
  detail::addAt(a.g, slotKp_, 1.0);
  detail::addAt(a.g, slotNk_, -1.0);
  detail::addAt(a.g, slotKn_, -1.0);
  // Branch equation: v(np) - v(nn) = V(t) (scaled during source stepping).
  a.rhs[static_cast<std::size_t>(auxIndex_)] += a.srcScale * valueAt(a.time);
}

void VoltageSource::collectBreakpoints(std::vector<double>& out) const {
  if (!isPwl_) return;
  for (const auto& s : wave_.samples()) out.push_back(s.t);
}

double VoltageSource::branchCurrent(const linalg::Vector& x) const {
  assert(auxIndex_ >= 0);
  return x[static_cast<std::size_t>(auxIndex_)];
}

}  // namespace prox::spice
