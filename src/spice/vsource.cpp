#include "spice/vsource.hpp"

#include <cassert>
#include <stdexcept>

#include "spice/stamp_util.hpp"

namespace prox::spice {

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn, double volts)
    : Device(std::move(name)), np_(np), nn_(nn), dc_(volts) {}

VoltageSource::VoltageSource(std::string name, NodeId np, NodeId nn,
                             wave::Waveform wave)
    : Device(std::move(name)), np_(np), nn_(nn), isPwl_(true), wave_(std::move(wave)) {
  if (wave_.empty()) throw std::invalid_argument("VoltageSource: empty PWL");
}

double VoltageSource::valueAt(double t) const {
  return isPwl_ ? wave_.value(t) : dc_;
}

void VoltageSource::setDc(double volts) {
  isPwl_ = false;
  dc_ = volts;
}

void VoltageSource::setWaveform(wave::Waveform wave) {
  if (wave.empty()) throw std::invalid_argument("VoltageSource: empty PWL");
  isPwl_ = true;
  wave_ = std::move(wave);
}

void VoltageSource::stamp(const StampArgs& a) {
  assert(auxIndex_ >= 0 && "circuit not finalized");
  const int k = auxIndex_;
  // KCL rows: branch current leaves np, enters nn.
  const int ip = np_ - 1;
  const int in = nn_ - 1;
  if (ip >= 0) {
    a.g(ip, static_cast<std::size_t>(k)) += 1.0;
    a.g(static_cast<std::size_t>(k), ip) += 1.0;
  }
  if (in >= 0) {
    a.g(in, static_cast<std::size_t>(k)) -= 1.0;
    a.g(static_cast<std::size_t>(k), in) -= 1.0;
  }
  // Branch equation: v(np) - v(nn) = V(t) (scaled during source stepping).
  a.rhs[static_cast<std::size_t>(k)] += a.srcScale * valueAt(a.time);
}

void VoltageSource::collectBreakpoints(std::vector<double>& out) const {
  if (!isPwl_) return;
  for (const auto& s : wave_.samples()) out.push_back(s.t);
}

double VoltageSource::branchCurrent(const linalg::Vector& x) const {
  assert(auxIndex_ >= 0);
  return x[static_cast<std::size_t>(auxIndex_)];
}

}  // namespace prox::spice
