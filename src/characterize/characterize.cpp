#include "characterize/characterize.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <stdexcept>

#include "characterize/checkpoint.hpp"
#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "support/budget.hpp"
#include "support/cancel.hpp"
#include "support/journal.hpp"

namespace prox::characterize {

namespace {

/// Interpolates a hole from its nearest finite neighbors along one grid
/// axis, weighted by axis coordinate.  @p sample maps an index on that axis
/// to the (pristine) table value; returns false when the whole line is holes.
template <class Sample>
bool healAlong(const std::vector<double>& grid, std::size_t pos,
               const Sample& sample, double* out) {
  double below = 0.0;
  double above = 0.0;
  double xb = 0.0;
  double xa = 0.0;
  bool hasBelow = false;
  bool hasAbove = false;
  for (std::size_t k = pos; k-- > 0;) {
    const double r = sample(k);
    if (std::isfinite(r)) {
      below = r;
      xb = grid[k];
      hasBelow = true;
      break;
    }
  }
  for (std::size_t k = pos + 1; k < grid.size(); ++k) {
    const double r = sample(k);
    if (std::isfinite(r)) {
      above = r;
      xa = grid[k];
      hasAbove = true;
      break;
    }
  }
  if (hasBelow && hasAbove) {
    const double f = xa > xb ? (grid[pos] - xb) / (xa - xb) : 0.5;
    *out = below + f * (above - below);
    return true;
  }
  if (hasBelow) {
    *out = below;
    return true;
  }
  if (hasAbove) {
    *out = above;
    return true;
  }
  return false;
}

/// Replaces every non-finite table entry by neighbor interpolation -- along
/// the w line first (the smoothest direction of the ratio surface), then v,
/// then u, falling back to the identity ratio 1.0 for fully isolated holes.
/// Healed entries are marked in the table.  Returns the number healed.
std::size_t healTable(model::DualTable& t) {
  std::vector<std::array<std::size_t, 3>> holes;
  for (std::size_t iu = 0; iu < t.u.size(); ++iu) {
    for (std::size_t iv = 0; iv < t.v.size(); ++iv) {
      for (std::size_t iw = 0; iw < t.w.size(); ++iw) {
        if (!std::isfinite(t.at(iu, iv, iw))) holes.push_back({iu, iv, iw});
      }
    }
  }
  if (holes.empty()) return 0;
  const model::DualTable orig = t;  // heal from pristine values only
  for (const auto& h : holes) {
    const std::size_t iu = h[0];
    const std::size_t iv = h[1];
    const std::size_t iw = h[2];
    double val = 1.0;
    const bool ok =
        healAlong(t.w, iw, [&](std::size_t k) { return orig.at(iu, iv, k); },
                  &val) ||
        healAlong(t.v, iv, [&](std::size_t k) { return orig.at(iu, k, iw); },
                  &val) ||
        healAlong(t.u, iu, [&](std::size_t k) { return orig.at(k, iv, iw); },
                  &val);
    t.at(iu, iv, iw) = ok ? val : 1.0;
    t.markHealed(iu, iv, iw);
  }
  return holes.size();
}

/// Describes a per-point failure, preserving the typed diagnostic when the
/// exception carries one.  Parallel sweeps collect these into per-point
/// slots and merge them into the log in enumeration order, so the log
/// content is independent of task interleaving.
support::Diagnostic describePointFailure(const std::exception& e, int refPin,
                                         double tauRef, double sep) {
  const auto* de = dynamic_cast<const support::DiagnosticError*>(&e);
  support::Diagnostic d =
      de ? de->diagnostic()
         : support::makeDiagnostic(support::StatusCode::SimulationFailed,
                                   e.what());
  return d.withSeverity(support::Severity::Warning)
      .withSite("characterize.dual_sweep")
      .withPin(refPin)
      .withSweepPoint(tauRef, sep);
}

/// Merges per-task diagnostic slots into @p log in task order.
void mergeDiagnostics(support::DiagnosticLog* log,
                      std::vector<std::optional<support::Diagnostic>>& slots) {
  if (log == nullptr) return;
  for (auto& d : slots) {
    if (d) log->record(std::move(*d));
  }
}

int resolveThreads(int configured) {
  return configured == 0 ? par::defaultThreadCount() : configured;
}

/// Periodic sweep progress: points/sec, ETA and checkpoint lag, reported by
/// whichever worker crosses the interval boundary first.  Purely
/// observational -- it reads counters and the clock, never results, so the
/// determinism contract is untouched.
class ProgressHeartbeat {
 public:
  ProgressHeartbeat(std::string label, std::size_t total,
                    const CharacterizationConfig& config)
      : label_(std::move(label)),
        total_(total),
        intervalNs_(static_cast<std::int64_t>(config.progressIntervalSeconds *
                                              1e9)),
        checkpoint_(config.checkpoint),
        start_(std::chrono::steady_clock::now()) {
    nextBeat_.store(intervalNs_, std::memory_order_relaxed);
  }

  /// Called once per completed (or replayed) sweep point, from any worker.
  void tick() {
    const std::uint64_t done =
        done_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (intervalNs_ <= 0) return;
    const std::int64_t elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    std::int64_t beat = nextBeat_.load(std::memory_order_relaxed);
    if (elapsed < beat) return;
    // One worker wins the beat with a CAS; the rest carry on immediately.
    if (!nextBeat_.compare_exchange_strong(beat, elapsed + intervalNs_,
                                           std::memory_order_relaxed)) {
      return;
    }
    emit(done, elapsed);
  }

 private:
  void emit(std::uint64_t done, std::int64_t elapsedNs) const {
    const double seconds = static_cast<double>(elapsedNs) * 1e-9;
    const double rate =
        seconds > 0.0 ? static_cast<double>(done) / seconds : 0.0;
    const double etaSeconds = rate > 0.0 && done < total_
                                  ? static_cast<double>(total_ - done) / rate
                                  : 0.0;
    const int lag =
        checkpoint_ != nullptr ? checkpoint_->unsyncedRecords() : 0;
    const int cadence = checkpoint_ != nullptr ? checkpoint_->fsyncEveryN() : 0;
    PROX_OBS_TRACE_COUNTER("char.progress.points_done", done);
    PROX_OBS_TRACE_COUNTER("char.progress.checkpoint_lag",
                           static_cast<std::uint64_t>(lag));
    std::fprintf(stderr,
                 "[characterize] %s: %llu/%llu points, %.1f pts/s, "
                 "ETA %.0fs, checkpoint lag %d/%d\n",
                 label_.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(total_), rate, etaSeconds,
                 lag, cadence);
  }

  std::string label_;
  std::uint64_t total_;
  std::int64_t intervalNs_;
  CheckpointSession* checkpoint_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::int64_t> nextBeat_{0};
};

}  // namespace

void buildDualTables(model::GateSimulator& sim,
                     const model::SingleInputModelSet& singles, int refPin,
                     int otherPin, wave::Edge edge,
                     const CharacterizationConfig& config,
                     model::DualTable* delayTable,
                     model::DualTable* transitionTable,
                     support::DiagnosticLog* log, const char* scopePrefix) {
  if (delayTable == nullptr || transitionTable == nullptr) {
    throw std::invalid_argument("buildDualTables: null output");
  }
  PROX_OBS_COUNT("characterize.tables_built", 2);  // delay + transition
  PROX_OBS_SCOPED_TIMER("characterize.table_seconds");
  PROX_OBS_SPAN("char.table");
  // Resource governance: tables count against any active budget, and the
  // per-table cadence is a natural place to sample the RSS ceiling.
  support::budgetChargeTables(2, "characterize.tables");
  support::budgetCheckRss("characterize.tables");
  const model::SingleInputModel& mRef = singles.at(refPin, edge);

  // Reference-tau axis: actual taus from the grid; their normalized
  // coordinates (tau/Delta^(1) for delay, tau/tau^(1) for transition) are
  // monotone in tau, so each table keeps a rectangular normalized grid with
  // exact sample placement and no inversion step.
  std::vector<double> tauRefs;
  for (std::size_t idx : config.dualTauIndices) {
    if (idx >= config.tauGrid.size()) {
      throw std::invalid_argument("buildDualTables: dualTauIndices out of range");
    }
    tauRefs.push_back(config.tauGrid[idx]);
  }
  std::sort(tauRefs.begin(), tauRefs.end());

  model::DualTable& dt = *delayTable;
  model::DualTable& tt = *transitionTable;
  dt.u.clear();
  tt.u.clear();
  for (double tau : tauRefs) {
    dt.u.push_back(tau / mRef.delay(tau));
    tt.u.push_back(tau / mRef.transition(tau));
  }
  if (!std::is_sorted(dt.u.begin(), dt.u.end()) ||
      !std::is_sorted(tt.u.begin(), tt.u.end())) {
    throw std::runtime_error(
        "buildDualTables: normalized tau axis not monotone; refine tauGrid");
  }
  dt.v = config.vGrid;
  dt.w = config.wGrid;
  tt.v = config.vGridTransition;
  tt.w = config.wGridTransition;
  dt.ratio.assign(dt.u.size() * dt.v.size() * dt.w.size(), 1.0);
  tt.ratio.assign(tt.u.size() * tt.v.size() * tt.w.size(), 1.0);
  PROX_OBS_COUNT("characterize.table_points",
                 dt.ratio.size() + tt.ratio.size());

  // Enumerate every sweep point in the legacy serial order (per iu: the
  // delay grid (iv, iw)-major, then the transition grid).  The enumeration
  // index is the point's task index: a threads == 1 run replays the exact
  // pre-parallel transient sequence, and a parallel run writes each result
  // into the slot its index owns, so placement never depends on scheduling.
  struct SweepPoint {
    model::DualQuery q;
    bool transition = false;
    std::size_t slot = 0;
  };
  std::vector<SweepPoint> points;
  points.reserve(dt.ratio.size() + tt.ratio.size());
  for (std::size_t iu = 0; iu < tauRefs.size(); ++iu) {
    const double tauRef = tauRefs[iu];
    const double d1 = mRef.delay(tauRef);
    const double t1 = mRef.transition(tauRef);
    // Delay table: v and w in Delta^(1) units.
    for (std::size_t iv = 0; iv < dt.v.size(); ++iv) {
      SweepPoint p;
      p.q.refPin = refPin;
      p.q.otherPin = otherPin;
      p.q.edge = edge;
      p.q.tauRef = tauRef;
      p.q.tauOther = std::clamp(dt.v[iv] * d1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < dt.w.size(); ++iw) {
        p.q.sep = dt.w[iw] * d1;
        p.transition = false;
        p.slot = dt.index(iu, iv, iw);
        points.push_back(p);
      }
    }
    // Transition table: v and w in tau^(1) units.
    for (std::size_t iv = 0; iv < tt.v.size(); ++iv) {
      SweepPoint p;
      p.q.refPin = refPin;
      p.q.otherPin = otherPin;
      p.q.edge = edge;
      p.q.tauRef = tauRef;
      p.q.tauOther = std::clamp(tt.v[iv] * t1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < tt.w.size(); ++iw) {
        p.q.sep = tt.w[iw] * t1;
        p.transition = true;
        p.slot = tt.index(iu, iv, iw);
        points.push_back(p);
      }
    }
  }

  // One sweep point: retry per config, then leave a NaN hole for the healing
  // pass below.  A failed oracle eval is never cached, so retries really
  // re-run the transient (and any injected-fault window advances).  Failure
  // diagnostics land in per-point slots and merge in enumeration order.
  const int attempts =
      config.healPointFailures ? 1 + std::max(config.pointRetries, 0) : 1;
  // Checkpoint scope naming this sweep: prefix, pin pair, edge.  The point's
  // enumeration index keys the record, so replay works at any thread count.
  const std::string ckptScope =
      std::string(scopePrefix) + ':' + std::to_string(refPin) + ':' +
      std::to_string(otherPin) + ':' +
      (edge == wave::Edge::Rising ? 'r' : 'f');
  std::vector<std::optional<support::Diagnostic>> pointDiags(points.size());
  const auto evalPoint = [&](model::DualInputModel& oracle, std::size_t i) {
    const SweepPoint& p = points[i];
    double value = std::numeric_limits<double>::quiet_NaN();
    if (config.checkpoint != nullptr) {
      std::vector<std::uint64_t> replay;
      if (config.checkpoint->lookup(ckptScope, i, &replay) &&
          replay.size() == 1) {
        // A journaled NaN replays the hole too, so the healing pass below
        // fills it exactly as the original run did.
        (p.transition ? tt : dt).ratio[p.slot] =
            support::bitsFromDouble(replay[0]);
        return;
      }
    }
    for (int a = 0; a < attempts; ++a) {
      try {
        if (a > 0) PROX_OBS_COUNT("characterize.point_retries", 1);
        value =
            p.transition ? oracle.transitionRatio(p.q) : oracle.delayRatio(p.q);
        break;
      } catch (const std::exception& e) {
        if (!config.healPointFailures) throw;
        if (a + 1 == attempts) {
          PROX_OBS_COUNT("characterize.points_failed", 1);
          pointDiags[i] = describePointFailure(e, refPin, p.q.tauRef, p.q.sep);
        }
      }
    }
    (p.transition ? tt : dt).ratio[p.slot] = value;
    if (config.checkpoint != nullptr) {
      config.checkpoint->record(ckptScope, i, {support::doubleToBits(value)});
    }
  };

  // Per-sweep-point tracing + heartbeat, layered over evalPoint so both the
  // serial and parallel paths report identically.
  ProgressHeartbeat heartbeat(ckptScope, points.size(), config);
  const auto evalPointTraced = [&](model::DualInputModel& oracle,
                                   std::size_t i) {
    PROX_OBS_SPAN_ARG("char.point", "index", i);
    evalPoint(oracle, i);
    heartbeat.tick();
  };

  const int threads = resolveThreads(config.threads);
  if (threads <= 1) {
    // Legacy serial path: one shared simulator and memoizing oracle.  The
    // memo lives on the simulator, so repeated sweeps over the same sim
    // (delay then transition tables, or pair sweeps after per-ref ones)
    // reuse earlier oracle answers instead of re-running the transient.
    // The TaskScope wrapping inside parallelFor keeps task-keyed fault
    // plans firing at the same point as any parallel run.
    model::OracleDualInputModel oracle(sim, singles, &sim.dualMemo());
    par::parallelFor(
        points.size(), [&](std::size_t i) { evalPointTraced(oracle, i); },
        {.threads = 1, .failFast = true, .cancel = config.cancel});
  } else {
    // Parallel path: every point gets a fresh simulator + oracle over the
    // same gate.  The simulator's result is a pure function of the gate and
    // the event set, so per-point instances reproduce the serial values bit
    // for bit (asserted by determinism_test).
    const model::Gate& gate = sim.gate();
    par::parallelFor(
        points.size(),
        [&](std::size_t i) {
          model::GateSimulator localSim(gate);
          model::OracleDualInputModel oracle(localSim, singles);
          evalPointTraced(oracle, i);
        },
        {.threads = threads, .failFast = true, .cancel = config.cancel});
  }
  mergeDiagnostics(log, pointDiags);

  const std::size_t healedPoints = healTable(dt) + healTable(tt);
  if (healedPoints > 0) {
    PROX_OBS_COUNT("characterize.points_healed", healedPoints);
  }
}

model::StepCorrection characterizeStepCorrection(
    model::GateSimulator& sim, const model::SingleInputModelSet& singles,
    const model::DualInputModel& dual, double stepTau, bool healFailures,
    support::DiagnosticLog* log, int threads, support::CancelToken* cancel,
    CheckpointSession* checkpoint) {
  model::StepCorrection corr;
  const int n = sim.gate().spec.type == cells::GateType::Inverter
                    ? 1
                    : sim.gate().spec.fanin;
  if (n < 2) return corr;

  model::ProximityOptions noCorrection;
  noCorrection.applyCorrection = false;
  const model::ProximityCalculator raw(
      sim.gate().complex
          ? model::senseResolverFor(*sim.gate().complex)
          : model::senseResolverFor(sim.gate().spec.type),
      singles, dual, {}, noCorrection);

  // Tasks in the legacy order (Rising k = 2..n, then Falling), including the
  // non-sensitizable prefixes: their indices stay stable so task-keyed fault
  // plans address the same (edge, k) term at any thread count.
  struct CorrTask {
    wave::Edge edge = wave::Edge::Rising;
    int k = 2;
    bool skip = false;  // non-sensitizable prefix -> zero corrective term
  };
  std::vector<CorrTask> tasks;
  for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
    for (int k = 2; k <= n; ++k) {
      CorrTask t;
      t.edge = edge;
      t.k = k;
      if (sim.gate().complex) {
        std::vector<int> pins;
        for (int p = 0; p < k; ++p) pins.push_back(p);
        // Complex gates: skip prefixes that cannot toggle the output.
        t.skip = !sim.gate().complex->sensitizingAssignment(pins);
      }
      tasks.push_back(t);
    }
  }

  struct CorrResult {
    double dErr = 0.0;
    double tErr = 0.0;
  };
  std::vector<CorrResult> results(tasks.size());
  std::vector<std::optional<support::Diagnostic>> taskDiags(tasks.size());
  const auto evalTask = [&](model::GateSimulator& s, std::size_t i) {
    PROX_OBS_SPAN_ARG("char.corr_term", "index", i);
    const CorrTask& t = tasks[i];
    if (t.skip) return;
    if (checkpoint != nullptr) {
      std::vector<std::uint64_t> replay;
      if (checkpoint->lookup("corr", i, &replay) && replay.size() == 2) {
        results[i].dErr = support::bitsFromDouble(replay[0]);
        results[i].tErr = support::bitsFromDouble(replay[1]);
        return;
      }
    }
    PROX_OBS_COUNT("characterize.correction_points", 1);
    // A failed correction point degrades to a zero corrective term: the
    // uncorrected model is the paper's baseline, so "no correction" is the
    // safe identity rather than an abort.
    std::vector<model::InputEvent> events;
    for (int p = 0; p < t.k; ++p) events.push_back({p, t.edge, 0.0, stepTau});
    try {
      const model::SimOutcome actual = s.simulate(events, 0);
      const model::ProximityResult modeled = raw.compute(events);
      results[i].dErr = actual.delay ? *actual.delay - modeled.delay : 0.0;
      results[i].tErr = actual.transitionTime
                            ? *actual.transitionTime - modeled.transitionTime
                            : 0.0;
    } catch (const std::exception& e) {
      if (!healFailures) throw;
      PROX_OBS_COUNT("characterize.correction_points_failed", 1);
      taskDiags[i] = describePointFailure(e, /*refPin=*/0, stepTau, 0.0);
    }
    // Journaled after the catch so a healed failure records its degraded
    // zero term -- a resume replays the same zeros the original run kept.
    if (checkpoint != nullptr) {
      checkpoint->record("corr", i, {support::doubleToBits(results[i].dErr),
                                     support::doubleToBits(results[i].tErr)});
    }
  };

  const int resolved = resolveThreads(threads);
  if (resolved <= 1) {
    par::parallelFor(
        tasks.size(), [&](std::size_t i) { evalTask(sim, i); },
        {.threads = 1, .failFast = true, .cancel = cancel});
  } else {
    // Per-task simulators; @p dual must be thread-safe (see header note).
    const model::Gate& gate = sim.gate();
    par::parallelFor(
        tasks.size(),
        [&](std::size_t i) {
          model::GateSimulator localSim(gate);
          evalTask(localSim, i);
        },
        {.threads = resolved, .failFast = true, .cancel = cancel});
  }
  mergeDiagnostics(log, taskDiags);

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].edge == wave::Edge::Rising) {
      corr.delayErrorRising.push_back(results[i].dErr);
      corr.transitionErrorRising.push_back(results[i].tErr);
    } else {
      corr.delayErrorFalling.push_back(results[i].dErr);
      corr.transitionErrorFalling.push_back(results[i].tErr);
    }
  }
  return corr;
}

namespace {

/// Shared body of the simple and complex characterization flows: the gate's
/// thresholds are already in place; this runs the single-input sweeps, the
/// dual-table construction and the correction characterization.
CharacterizedGate characterizeFromGate(model::Gate gate,
                                       const CharacterizationConfig& config) {
  PROX_OBS_COUNT("characterize.gates", 1);
  PROX_OBS_SCOPED_TIMER("characterize.gate_seconds");
  PROX_OBS_SPAN("char.gate");
  CharacterizedGate out;
  out.gate = std::move(gate);

  const int threads = resolveThreads(config.threads);
  model::GateSimulator sim(out.gate);

  // Single-input sweeps: one task per (pin, edge), in the legacy pin-major
  // Rising-then-Falling order so a serial run replays the exact pre-parallel
  // transient sequence.
  {
    const auto pins = static_cast<std::size_t>(out.pinCount());
    std::vector<model::SingleInputModel> singleModels(2 * pins);
    const auto singleTask = [&](model::GateSimulator& s, std::size_t i) {
      PROX_OBS_SPAN_ARG("char.single", "index", i);
      const int pin = static_cast<int>(i / 2);
      const wave::Edge edge =
          i % 2 == 0 ? wave::Edge::Rising : wave::Edge::Falling;
      // Checkpoint scope "single": one whole-table record per (pin, edge) --
      // 3 header words (loadCap, K, Vdd) then (tau, delay, transition) bit
      // patterns per grid row.
      if (config.checkpoint != nullptr) {
        std::vector<std::uint64_t> replay;
        if (config.checkpoint->lookup("single", i, &replay) &&
            replay.size() >= 6 && (replay.size() - 3) % 3 == 0) {
          std::vector<model::SingleInputModel::Sample> table;
          for (std::size_t r = 3; r + 2 < replay.size(); r += 3) {
            table.push_back({support::bitsFromDouble(replay[r]),
                             support::bitsFromDouble(replay[r + 1]),
                             support::bitsFromDouble(replay[r + 2])});
          }
          singleModels[i] = model::SingleInputModel(
              pin, edge, std::move(table), support::bitsFromDouble(replay[0]),
              support::bitsFromDouble(replay[1]),
              support::bitsFromDouble(replay[2]));
          return;
        }
      }
      singleModels[i] =
          model::SingleInputModel::characterize(s, pin, edge, config.tauGrid);
      if (config.checkpoint != nullptr) {
        const model::SingleInputModel& m = singleModels[i];
        std::vector<std::uint64_t> words{
            support::doubleToBits(m.loadCap()),
            support::doubleToBits(m.strengthK()),
            support::doubleToBits(m.vdd())};
        for (const model::SingleInputModel::Sample& row : m.table()) {
          words.push_back(support::doubleToBits(row.tau));
          words.push_back(support::doubleToBits(row.delay));
          words.push_back(support::doubleToBits(row.transition));
        }
        config.checkpoint->record("single", i, words);
      }
    };
    if (threads <= 1) {
      par::parallelFor(
          singleModels.size(), [&](std::size_t i) { singleTask(sim, i); },
          {.threads = 1, .failFast = true, .cancel = config.cancel});
    } else {
      par::parallelFor(
          singleModels.size(),
          [&](std::size_t i) {
            model::GateSimulator localSim(out.gate);
            singleTask(localSim, i);
          },
          {.threads = threads, .failFast = true, .cancel = config.cancel});
    }
    auto set = std::make_unique<model::SingleInputModelSet>();
    for (model::SingleInputModel& m : singleModels) set->set(std::move(m));
    out.singles = std::move(set);
    // The singles are the axes every later sweep normalizes by; pin them to
    // disk before the (much longer) dual sweeps start.
    if (config.checkpoint != nullptr) config.checkpoint->flush();
  }
  out.dual = std::make_unique<model::TabulatedDualInputModel>(*out.singles);

  const int n = out.pinCount();
  for (int pin = 0; pin < n; ++pin) {
    // Representative partner pin: the configured offset for simple gates;
    // for complex gates, the first pin forming a sensitizable pair.
    int partner = n > 1 ? (pin + config.partnerOffset) % n : pin;
    bool havePartner = n > 1;
    if (out.gate.complex && havePartner) {
      havePartner = false;
      for (int q = 1; q < n; ++q) {
        const int cand = (pin + q) % n;
        if (out.gate.complex->sensitizingAssignment({pin, cand})) {
          partner = cand;
          havePartner = true;
          break;
        }
      }
    }
    for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
      model::DualTable dt;
      model::DualTable tt;
      if (havePartner) {
        buildDualTables(sim, *out.singles, pin, partner, edge, config, &dt, &tt,
                        &out.diagnostics);
      } else {
        // Degenerate (single-input gate or unpairable pin): identity tables.
        dt.u = {1.0};
        dt.v = {1.0};
        dt.w = {0.0};
        dt.ratio = {1.0};
        tt = dt;
      }
      out.dual->setDelayTable(pin, edge, std::move(dt));
      out.dual->setTransitionTable(pin, edge, std::move(tt));
    }
  }

  // Complex gates additionally get the full pair matrix (Figure 4-2 option
  // 2(a)): the per-reference approximation assumes every partner behaves
  // alike, which holds for single-stack NAND/NOR but not when one partner
  // shares a series branch and another a parallel branch.
  if (out.gate.complex) {
    for (int ref = 0; ref < n; ++ref) {
      for (int other = 0; other < n; ++other) {
        if (ref == other) continue;
        if (!out.gate.complex->sensitizingAssignment({ref, other})) continue;
        for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
          model::DualTable dt;
          model::DualTable tt;
          buildDualTables(sim, *out.singles, ref, other, edge, config, &dt,
                          &tt, &out.diagnostics, /*scopePrefix=*/"pair");
          out.dual->setPairDelayTable(ref, other, edge, std::move(dt));
          out.dual->setPairTransitionTable(ref, other, edge, std::move(tt));
        }
      }
    }
  }

  out.correction = characterizeStepCorrection(
      sim, *out.singles, *out.dual, config.stepTau, config.healPointFailures,
      &out.diagnostics, threads, config.cancel, config.checkpoint);
  if (config.checkpoint != nullptr) config.checkpoint->flush();
  return out;
}

}  // namespace

CharacterizedGate characterizeGate(const cells::CellSpec& spec,
                                   const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeGate(spec, config.vtcStep), config);
}

CharacterizedGate characterizeComplexGate(const cells::ComplexCellSpec& spec,
                                          const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeComplexGate(spec, config.vtcStep),
                              config);
}

}  // namespace prox::characterize
