#include "characterize/characterize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"

namespace prox::characterize {

namespace {

/// Interpolates a hole from its nearest finite neighbors along one grid
/// axis, weighted by axis coordinate.  @p sample maps an index on that axis
/// to the (pristine) table value; returns false when the whole line is holes.
template <class Sample>
bool healAlong(const std::vector<double>& grid, std::size_t pos,
               const Sample& sample, double* out) {
  double below = 0.0;
  double above = 0.0;
  double xb = 0.0;
  double xa = 0.0;
  bool hasBelow = false;
  bool hasAbove = false;
  for (std::size_t k = pos; k-- > 0;) {
    const double r = sample(k);
    if (std::isfinite(r)) {
      below = r;
      xb = grid[k];
      hasBelow = true;
      break;
    }
  }
  for (std::size_t k = pos + 1; k < grid.size(); ++k) {
    const double r = sample(k);
    if (std::isfinite(r)) {
      above = r;
      xa = grid[k];
      hasAbove = true;
      break;
    }
  }
  if (hasBelow && hasAbove) {
    const double f = xa > xb ? (grid[pos] - xb) / (xa - xb) : 0.5;
    *out = below + f * (above - below);
    return true;
  }
  if (hasBelow) {
    *out = below;
    return true;
  }
  if (hasAbove) {
    *out = above;
    return true;
  }
  return false;
}

/// Replaces every non-finite table entry by neighbor interpolation -- along
/// the w line first (the smoothest direction of the ratio surface), then v,
/// then u, falling back to the identity ratio 1.0 for fully isolated holes.
/// Healed entries are marked in the table.  Returns the number healed.
std::size_t healTable(model::DualTable& t) {
  std::vector<std::array<std::size_t, 3>> holes;
  for (std::size_t iu = 0; iu < t.u.size(); ++iu) {
    for (std::size_t iv = 0; iv < t.v.size(); ++iv) {
      for (std::size_t iw = 0; iw < t.w.size(); ++iw) {
        if (!std::isfinite(t.at(iu, iv, iw))) holes.push_back({iu, iv, iw});
      }
    }
  }
  if (holes.empty()) return 0;
  const model::DualTable orig = t;  // heal from pristine values only
  for (const auto& h : holes) {
    const std::size_t iu = h[0];
    const std::size_t iv = h[1];
    const std::size_t iw = h[2];
    double val = 1.0;
    const bool ok =
        healAlong(t.w, iw, [&](std::size_t k) { return orig.at(iu, iv, k); },
                  &val) ||
        healAlong(t.v, iv, [&](std::size_t k) { return orig.at(iu, k, iw); },
                  &val) ||
        healAlong(t.u, iu, [&](std::size_t k) { return orig.at(k, iv, iw); },
                  &val);
    t.at(iu, iv, iw) = ok ? val : 1.0;
    t.markHealed(iu, iv, iw);
  }
  return holes.size();
}

/// Records a per-point failure into @p log (when non-null), preserving the
/// typed diagnostic when the exception carries one.
void recordPointFailure(support::DiagnosticLog* log, const std::exception& e,
                        int refPin, double tauRef, double sep) {
  if (log == nullptr) return;
  const auto* de = dynamic_cast<const support::DiagnosticError*>(&e);
  support::Diagnostic d =
      de ? de->diagnostic()
         : support::makeDiagnostic(support::StatusCode::SimulationFailed,
                                   e.what());
  log->record(d.withSeverity(support::Severity::Warning)
                  .withSite("characterize.dual_sweep")
                  .withPin(refPin)
                  .withSweepPoint(tauRef, sep));
}

}  // namespace

void buildDualTables(model::GateSimulator& sim,
                     const model::SingleInputModelSet& singles, int refPin,
                     int otherPin, wave::Edge edge,
                     const CharacterizationConfig& config,
                     model::DualTable* delayTable,
                     model::DualTable* transitionTable,
                     support::DiagnosticLog* log) {
  if (delayTable == nullptr || transitionTable == nullptr) {
    throw std::invalid_argument("buildDualTables: null output");
  }
  PROX_OBS_COUNT("characterize.tables_built", 2);  // delay + transition
  PROX_OBS_SCOPED_TIMER("characterize.table_seconds");
  const model::SingleInputModel& mRef = singles.at(refPin, edge);
  model::OracleDualInputModel oracle(sim, singles);

  // Reference-tau axis: actual taus from the grid; their normalized
  // coordinates (tau/Delta^(1) for delay, tau/tau^(1) for transition) are
  // monotone in tau, so each table keeps a rectangular normalized grid with
  // exact sample placement and no inversion step.
  std::vector<double> tauRefs;
  for (std::size_t idx : config.dualTauIndices) {
    if (idx >= config.tauGrid.size()) {
      throw std::invalid_argument("buildDualTables: dualTauIndices out of range");
    }
    tauRefs.push_back(config.tauGrid[idx]);
  }
  std::sort(tauRefs.begin(), tauRefs.end());

  model::DualTable& dt = *delayTable;
  model::DualTable& tt = *transitionTable;
  dt.u.clear();
  tt.u.clear();
  for (double tau : tauRefs) {
    dt.u.push_back(tau / mRef.delay(tau));
    tt.u.push_back(tau / mRef.transition(tau));
  }
  if (!std::is_sorted(dt.u.begin(), dt.u.end()) ||
      !std::is_sorted(tt.u.begin(), tt.u.end())) {
    throw std::runtime_error(
        "buildDualTables: normalized tau axis not monotone; refine tauGrid");
  }
  dt.v = config.vGrid;
  dt.w = config.wGrid;
  tt.v = config.vGridTransition;
  tt.w = config.wGridTransition;
  dt.ratio.assign(dt.u.size() * dt.v.size() * dt.w.size(), 1.0);
  tt.ratio.assign(tt.u.size() * tt.v.size() * tt.w.size(), 1.0);
  PROX_OBS_COUNT("characterize.table_points",
                 dt.ratio.size() + tt.ratio.size());

  // One sweep point: retry per config, then leave a NaN hole for the healing
  // pass below.  A failed oracle eval is never cached, so retries really
  // re-run the transient (and any injected-fault window advances).
  const int attempts =
      config.healPointFailures ? 1 + std::max(config.pointRetries, 0) : 1;
  const auto evalPoint = [&](const model::DualQuery& q,
                             bool transition) -> double {
    for (int a = 0; a < attempts; ++a) {
      try {
        if (a > 0) PROX_OBS_COUNT("characterize.point_retries", 1);
        return transition ? oracle.transitionRatio(q) : oracle.delayRatio(q);
      } catch (const std::exception& e) {
        if (!config.healPointFailures) throw;
        if (a + 1 == attempts) {
          PROX_OBS_COUNT("characterize.points_failed", 1);
          recordPointFailure(log, e, refPin, q.tauRef, q.sep);
        }
      }
    }
    return std::numeric_limits<double>::quiet_NaN();
  };

  for (std::size_t iu = 0; iu < tauRefs.size(); ++iu) {
    const double tauRef = tauRefs[iu];
    const double d1 = mRef.delay(tauRef);
    const double t1 = mRef.transition(tauRef);
    // Delay table: v and w in Delta^(1) units.
    for (std::size_t iv = 0; iv < dt.v.size(); ++iv) {
      model::DualQuery q;
      q.refPin = refPin;
      q.otherPin = otherPin;
      q.edge = edge;
      q.tauRef = tauRef;
      q.tauOther = std::clamp(dt.v[iv] * d1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < dt.w.size(); ++iw) {
        q.sep = dt.w[iw] * d1;
        dt.at(iu, iv, iw) = evalPoint(q, false);
      }
    }
    // Transition table: v and w in tau^(1) units.
    for (std::size_t iv = 0; iv < tt.v.size(); ++iv) {
      model::DualQuery q;
      q.refPin = refPin;
      q.otherPin = otherPin;
      q.edge = edge;
      q.tauRef = tauRef;
      q.tauOther = std::clamp(tt.v[iv] * t1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < tt.w.size(); ++iw) {
        q.sep = tt.w[iw] * t1;
        tt.at(iu, iv, iw) = evalPoint(q, true);
      }
    }
  }

  const std::size_t healedPoints = healTable(dt) + healTable(tt);
  if (healedPoints > 0) {
    PROX_OBS_COUNT("characterize.points_healed", healedPoints);
  }
}

model::StepCorrection characterizeStepCorrection(
    model::GateSimulator& sim, const model::SingleInputModelSet& singles,
    const model::DualInputModel& dual, double stepTau, bool healFailures,
    support::DiagnosticLog* log) {
  model::StepCorrection corr;
  const int n = sim.gate().spec.type == cells::GateType::Inverter
                    ? 1
                    : sim.gate().spec.fanin;
  if (n < 2) return corr;

  model::ProximityOptions noCorrection;
  noCorrection.applyCorrection = false;
  const model::ProximityCalculator raw(
      sim.gate().complex
          ? model::senseResolverFor(*sim.gate().complex)
          : model::senseResolverFor(sim.gate().spec.type),
      singles, dual, {}, noCorrection);

  for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
    for (int k = 2; k <= n; ++k) {
      std::vector<model::InputEvent> events;
      std::vector<int> pins;
      for (int p = 0; p < k; ++p) {
        events.push_back({p, edge, 0.0, stepTau});
        pins.push_back(p);
      }
      // Complex gates: skip prefixes that cannot toggle the output.
      if (sim.gate().complex &&
          !sim.gate().complex->sensitizingAssignment(pins)) {
        if (edge == wave::Edge::Rising) {
          corr.delayErrorRising.push_back(0.0);
          corr.transitionErrorRising.push_back(0.0);
        } else {
          corr.delayErrorFalling.push_back(0.0);
          corr.transitionErrorFalling.push_back(0.0);
        }
        continue;
      }
      PROX_OBS_COUNT("characterize.correction_points", 1);
      // A failed correction point degrades to a zero corrective term: the
      // uncorrected model is the paper's baseline, so "no correction" is the
      // safe identity rather than an abort.
      double dErr = 0.0;
      double tErr = 0.0;
      try {
        const model::SimOutcome actual = sim.simulate(events, 0);
        const model::ProximityResult modeled = raw.compute(events);
        dErr = actual.delay ? *actual.delay - modeled.delay : 0.0;
        tErr = actual.transitionTime
                   ? *actual.transitionTime - modeled.transitionTime
                   : 0.0;
      } catch (const std::exception& e) {
        if (!healFailures) throw;
        PROX_OBS_COUNT("characterize.correction_points_failed", 1);
        recordPointFailure(log, e, /*refPin=*/0, stepTau, 0.0);
      }
      if (edge == wave::Edge::Rising) {
        corr.delayErrorRising.push_back(dErr);
        corr.transitionErrorRising.push_back(tErr);
      } else {
        corr.delayErrorFalling.push_back(dErr);
        corr.transitionErrorFalling.push_back(tErr);
      }
    }
  }
  return corr;
}

namespace {

/// Shared body of the simple and complex characterization flows: the gate's
/// thresholds are already in place; this runs the single-input sweeps, the
/// dual-table construction and the correction characterization.
CharacterizedGate characterizeFromGate(model::Gate gate,
                                       const CharacterizationConfig& config) {
  PROX_OBS_COUNT("characterize.gates", 1);
  PROX_OBS_SCOPED_TIMER("characterize.gate_seconds");
  CharacterizedGate out;
  out.gate = std::move(gate);

  model::GateSimulator sim(out.gate);
  out.singles = std::make_unique<model::SingleInputModelSet>(
      model::SingleInputModelSet::characterizeAll(sim, config.tauGrid));
  out.dual = std::make_unique<model::TabulatedDualInputModel>(*out.singles);

  const int n = out.pinCount();
  for (int pin = 0; pin < n; ++pin) {
    // Representative partner pin: the configured offset for simple gates;
    // for complex gates, the first pin forming a sensitizable pair.
    int partner = n > 1 ? (pin + config.partnerOffset) % n : pin;
    bool havePartner = n > 1;
    if (out.gate.complex && havePartner) {
      havePartner = false;
      for (int q = 1; q < n; ++q) {
        const int cand = (pin + q) % n;
        if (out.gate.complex->sensitizingAssignment({pin, cand})) {
          partner = cand;
          havePartner = true;
          break;
        }
      }
    }
    for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
      model::DualTable dt;
      model::DualTable tt;
      if (havePartner) {
        buildDualTables(sim, *out.singles, pin, partner, edge, config, &dt, &tt,
                        &out.diagnostics);
      } else {
        // Degenerate (single-input gate or unpairable pin): identity tables.
        dt.u = {1.0};
        dt.v = {1.0};
        dt.w = {0.0};
        dt.ratio = {1.0};
        tt = dt;
      }
      out.dual->setDelayTable(pin, edge, std::move(dt));
      out.dual->setTransitionTable(pin, edge, std::move(tt));
    }
  }

  // Complex gates additionally get the full pair matrix (Figure 4-2 option
  // 2(a)): the per-reference approximation assumes every partner behaves
  // alike, which holds for single-stack NAND/NOR but not when one partner
  // shares a series branch and another a parallel branch.
  if (out.gate.complex) {
    for (int ref = 0; ref < n; ++ref) {
      for (int other = 0; other < n; ++other) {
        if (ref == other) continue;
        if (!out.gate.complex->sensitizingAssignment({ref, other})) continue;
        for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
          model::DualTable dt;
          model::DualTable tt;
          buildDualTables(sim, *out.singles, ref, other, edge, config, &dt,
                          &tt, &out.diagnostics);
          out.dual->setPairDelayTable(ref, other, edge, std::move(dt));
          out.dual->setPairTransitionTable(ref, other, edge, std::move(tt));
        }
      }
    }
  }

  out.correction =
      characterizeStepCorrection(sim, *out.singles, *out.dual, config.stepTau,
                                 config.healPointFailures, &out.diagnostics);
  return out;
}

}  // namespace

CharacterizedGate characterizeGate(const cells::CellSpec& spec,
                                   const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeGate(spec, config.vtcStep), config);
}

CharacterizedGate characterizeComplexGate(const cells::ComplexCellSpec& spec,
                                          const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeComplexGate(spec, config.vtcStep),
                              config);
}

}  // namespace prox::characterize
