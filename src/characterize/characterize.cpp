#include "characterize/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"

namespace prox::characterize {

void buildDualTables(model::GateSimulator& sim,
                     const model::SingleInputModelSet& singles, int refPin,
                     int otherPin, wave::Edge edge,
                     const CharacterizationConfig& config,
                     model::DualTable* delayTable,
                     model::DualTable* transitionTable) {
  if (delayTable == nullptr || transitionTable == nullptr) {
    throw std::invalid_argument("buildDualTables: null output");
  }
  PROX_OBS_COUNT("characterize.tables_built", 2);  // delay + transition
  PROX_OBS_SCOPED_TIMER("characterize.table_seconds");
  const model::SingleInputModel& mRef = singles.at(refPin, edge);
  model::OracleDualInputModel oracle(sim, singles);

  // Reference-tau axis: actual taus from the grid; their normalized
  // coordinates (tau/Delta^(1) for delay, tau/tau^(1) for transition) are
  // monotone in tau, so each table keeps a rectangular normalized grid with
  // exact sample placement and no inversion step.
  std::vector<double> tauRefs;
  for (std::size_t idx : config.dualTauIndices) {
    if (idx >= config.tauGrid.size()) {
      throw std::invalid_argument("buildDualTables: dualTauIndices out of range");
    }
    tauRefs.push_back(config.tauGrid[idx]);
  }
  std::sort(tauRefs.begin(), tauRefs.end());

  model::DualTable& dt = *delayTable;
  model::DualTable& tt = *transitionTable;
  dt.u.clear();
  tt.u.clear();
  for (double tau : tauRefs) {
    dt.u.push_back(tau / mRef.delay(tau));
    tt.u.push_back(tau / mRef.transition(tau));
  }
  if (!std::is_sorted(dt.u.begin(), dt.u.end()) ||
      !std::is_sorted(tt.u.begin(), tt.u.end())) {
    throw std::runtime_error(
        "buildDualTables: normalized tau axis not monotone; refine tauGrid");
  }
  dt.v = config.vGrid;
  dt.w = config.wGrid;
  tt.v = config.vGridTransition;
  tt.w = config.wGridTransition;
  dt.ratio.assign(dt.u.size() * dt.v.size() * dt.w.size(), 1.0);
  tt.ratio.assign(tt.u.size() * tt.v.size() * tt.w.size(), 1.0);
  PROX_OBS_COUNT("characterize.table_points",
                 dt.ratio.size() + tt.ratio.size());

  for (std::size_t iu = 0; iu < tauRefs.size(); ++iu) {
    const double tauRef = tauRefs[iu];
    const double d1 = mRef.delay(tauRef);
    const double t1 = mRef.transition(tauRef);
    // Delay table: v and w in Delta^(1) units.
    for (std::size_t iv = 0; iv < dt.v.size(); ++iv) {
      model::DualQuery q;
      q.refPin = refPin;
      q.otherPin = otherPin;
      q.edge = edge;
      q.tauRef = tauRef;
      q.tauOther = std::clamp(dt.v[iv] * d1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < dt.w.size(); ++iw) {
        q.sep = dt.w[iw] * d1;
        dt.at(iu, iv, iw) = oracle.delayRatio(q);
      }
    }
    // Transition table: v and w in tau^(1) units.
    for (std::size_t iv = 0; iv < tt.v.size(); ++iv) {
      model::DualQuery q;
      q.refPin = refPin;
      q.otherPin = otherPin;
      q.edge = edge;
      q.tauRef = tauRef;
      q.tauOther = std::clamp(tt.v[iv] * t1, 1e-12, 50e-9);
      for (std::size_t iw = 0; iw < tt.w.size(); ++iw) {
        q.sep = tt.w[iw] * t1;
        tt.at(iu, iv, iw) = oracle.transitionRatio(q);
      }
    }
  }
}

model::StepCorrection characterizeStepCorrection(
    model::GateSimulator& sim, const model::SingleInputModelSet& singles,
    const model::DualInputModel& dual, double stepTau) {
  model::StepCorrection corr;
  const int n = sim.gate().spec.type == cells::GateType::Inverter
                    ? 1
                    : sim.gate().spec.fanin;
  if (n < 2) return corr;

  model::ProximityOptions noCorrection;
  noCorrection.applyCorrection = false;
  const model::ProximityCalculator raw(
      sim.gate().complex
          ? model::senseResolverFor(*sim.gate().complex)
          : model::senseResolverFor(sim.gate().spec.type),
      singles, dual, {}, noCorrection);

  for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
    for (int k = 2; k <= n; ++k) {
      std::vector<model::InputEvent> events;
      std::vector<int> pins;
      for (int p = 0; p < k; ++p) {
        events.push_back({p, edge, 0.0, stepTau});
        pins.push_back(p);
      }
      // Complex gates: skip prefixes that cannot toggle the output.
      if (sim.gate().complex &&
          !sim.gate().complex->sensitizingAssignment(pins)) {
        if (edge == wave::Edge::Rising) {
          corr.delayErrorRising.push_back(0.0);
          corr.transitionErrorRising.push_back(0.0);
        } else {
          corr.delayErrorFalling.push_back(0.0);
          corr.transitionErrorFalling.push_back(0.0);
        }
        continue;
      }
      PROX_OBS_COUNT("characterize.correction_points", 1);
      const model::SimOutcome actual = sim.simulate(events, 0);
      const model::ProximityResult modeled = raw.compute(events);
      const double dErr =
          actual.delay ? *actual.delay - modeled.delay : 0.0;
      const double tErr = actual.transitionTime
                              ? *actual.transitionTime - modeled.transitionTime
                              : 0.0;
      if (edge == wave::Edge::Rising) {
        corr.delayErrorRising.push_back(dErr);
        corr.transitionErrorRising.push_back(tErr);
      } else {
        corr.delayErrorFalling.push_back(dErr);
        corr.transitionErrorFalling.push_back(tErr);
      }
    }
  }
  return corr;
}

namespace {

/// Shared body of the simple and complex characterization flows: the gate's
/// thresholds are already in place; this runs the single-input sweeps, the
/// dual-table construction and the correction characterization.
CharacterizedGate characterizeFromGate(model::Gate gate,
                                       const CharacterizationConfig& config) {
  PROX_OBS_COUNT("characterize.gates", 1);
  PROX_OBS_SCOPED_TIMER("characterize.gate_seconds");
  CharacterizedGate out;
  out.gate = std::move(gate);

  model::GateSimulator sim(out.gate);
  out.singles = std::make_unique<model::SingleInputModelSet>(
      model::SingleInputModelSet::characterizeAll(sim, config.tauGrid));
  out.dual = std::make_unique<model::TabulatedDualInputModel>(*out.singles);

  const int n = out.pinCount();
  for (int pin = 0; pin < n; ++pin) {
    // Representative partner pin: the configured offset for simple gates;
    // for complex gates, the first pin forming a sensitizable pair.
    int partner = n > 1 ? (pin + config.partnerOffset) % n : pin;
    bool havePartner = n > 1;
    if (out.gate.complex && havePartner) {
      havePartner = false;
      for (int q = 1; q < n; ++q) {
        const int cand = (pin + q) % n;
        if (out.gate.complex->sensitizingAssignment({pin, cand})) {
          partner = cand;
          havePartner = true;
          break;
        }
      }
    }
    for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
      model::DualTable dt;
      model::DualTable tt;
      if (havePartner) {
        buildDualTables(sim, *out.singles, pin, partner, edge, config, &dt, &tt);
      } else {
        // Degenerate (single-input gate or unpairable pin): identity tables.
        dt.u = {1.0};
        dt.v = {1.0};
        dt.w = {0.0};
        dt.ratio = {1.0};
        tt = dt;
      }
      out.dual->setDelayTable(pin, edge, std::move(dt));
      out.dual->setTransitionTable(pin, edge, std::move(tt));
    }
  }

  // Complex gates additionally get the full pair matrix (Figure 4-2 option
  // 2(a)): the per-reference approximation assumes every partner behaves
  // alike, which holds for single-stack NAND/NOR but not when one partner
  // shares a series branch and another a parallel branch.
  if (out.gate.complex) {
    for (int ref = 0; ref < n; ++ref) {
      for (int other = 0; other < n; ++other) {
        if (ref == other) continue;
        if (!out.gate.complex->sensitizingAssignment({ref, other})) continue;
        for (wave::Edge edge : {wave::Edge::Rising, wave::Edge::Falling}) {
          model::DualTable dt;
          model::DualTable tt;
          buildDualTables(sim, *out.singles, ref, other, edge, config, &dt,
                          &tt);
          out.dual->setPairDelayTable(ref, other, edge, std::move(dt));
          out.dual->setPairTransitionTable(ref, other, edge, std::move(tt));
        }
      }
    }
  }

  out.correction =
      characterizeStepCorrection(sim, *out.singles, *out.dual, config.stepTau);
  return out;
}

}  // namespace

CharacterizedGate characterizeGate(const cells::CellSpec& spec,
                                   const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeGate(spec, config.vtcStep), config);
}

CharacterizedGate characterizeComplexGate(const cells::ComplexCellSpec& spec,
                                          const CharacterizationConfig& config) {
  return characterizeFromGate(model::makeComplexGate(spec, config.vtcStep),
                              config);
}

}  // namespace prox::characterize
