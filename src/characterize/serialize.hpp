#pragma once
// Text serialization of a CharacterizedGate package (".prox" files).
// A characterized library cell can be written once and reloaded by timing
// tools without any access to the circuit simulator.

#include <iosfwd>
#include <string>

#include "characterize/characterize.hpp"

namespace prox::characterize {

/// Writes the complete package (cell spec, technology, thresholds, single
/// and dual tables, corrections) to @p os, ending with a "crc32" integrity
/// line over the token stream (format version 3).
void saveGateModel(const CharacterizedGate& g, std::ostream& os);

/// Writes to @p path through the atomic-commit writer (temp file + fsync +
/// rename): the model appears under its final name complete or not at all.
/// Throws support::DiagnosticError (IoError) on any filesystem failure.
void saveGateModel(const CharacterizedGate& g, const std::string& path);

/// Reads a package previously written by saveGateModel (format versions 1
/// through 3; version 2 adds per-table healed-point marks, version 3 the
/// trailing crc32 line, which is verified when present).  Throws
/// support::DiagnosticError -- a std::runtime_error whose Diagnostic carries
/// code ParseError and the 1-based line of the offending token -- on
/// truncated input, malformed or non-finite numbers, non-ascending grid
/// axes, duplicate table/section declarations, out-of-range pins or fanin,
/// unknown section tags, bad pull-network expressions, or a checksum
/// mismatch.  Ingestion is bounded (code ResourceExhausted): the raw input,
/// individual tokens, grid axis lengths, and total table memory (a multiple
/// of the input size) are all capped, and tables are charged against any
/// active support::ResourceBudget.
CharacterizedGate loadGateModel(std::istream& is);

/// Reads from @p path.
CharacterizedGate loadGateModelFile(const std::string& path);

}  // namespace prox::characterize
