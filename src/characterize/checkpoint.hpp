#pragma once
// Crash-safe characterization sessions: a CheckpointSession binds the sweep
// engine to a support::Journal so every computed result (single-input table,
// dual-table sweep point, correction term) is journaled as it lands, and a
// `--resume` run replays journaled results instead of re-simulating them.
//
// Correctness rests on the determinism contract (DESIGN.md §5): each task's
// result is a pure function of the gate and its deterministic task index, so
// "replay journaled points, recompute the rest" produces a byte-identical
// `.prox` versus an uninterrupted run -- at any thread count, and no matter
// where the previous run died.  Doubles travel as raw IEEE-754 bit patterns
// (support/journal.hpp), never through decimal formatting.
//
// The fingerprint stamped into the journal header digests the cell spec and
// every result-affecting configuration field; execution-only knobs (threads,
// the checkpoint/cancel pointers themselves) are excluded so a sweep started
// with --threads=8 can resume with --threads=1 and vice versa.  A mismatch at
// resume is a typed ParseError: foreign results must never be replayed.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cells/pull_network.hpp"
#include "characterize/characterize.hpp"
#include "support/journal.hpp"

namespace prox::characterize {

/// Digest of everything that determines characterization results for
/// @p spec under @p config (excluding execution-only fields, see above).
/// Whitespace-free; stable across runs and platforms with IEEE-754 doubles.
std::string configFingerprint(const cells::CellSpec& spec,
                              const CharacterizationConfig& config);
std::string configFingerprint(const cells::ComplexCellSpec& spec,
                              const CharacterizationConfig& config);

/// One characterization run's journal binding.  Construct before calling
/// characterizeGate (with config.checkpoint pointing at it); the sweep
/// engine calls lookup()/record(); the owner calls flush() when the flow
/// finishes or unwinds (cancellation, failure) so the journal survives.
///
/// lookup() is lock-free over an immutable replay map built at open;
/// record() delegates to the journal's internally synchronized append.
/// Both may be called concurrently from sweep workers.
class CheckpointSession {
 public:
  /// Opens @p path.  resume=false starts a fresh journal (truncating any
  /// previous one); resume=true replays the valid records of an existing
  /// journal whose header fingerprint must equal @p fingerprint (typed
  /// ParseError otherwise), tolerating a torn tail per the journal's crash
  /// contract.  A missing file resumes as an empty session.  @p journalOptions
  /// carries durability knobs (fsync cadence) through to the journal.
  CheckpointSession(const std::string& path, const std::string& fingerprint,
                    bool resume,
                    const support::Journal::Options& journalOptions = {});

  /// True when a journaled result exists for (scope, index); copies its
  /// payload words into @p words.
  bool lookup(const std::string& scope, std::uint64_t index,
              std::vector<std::uint64_t>* words) const;

  /// Journals one computed result.
  void record(const std::string& scope, std::uint64_t index,
              const std::vector<std::uint64_t>& words);

  /// Forces journaled records to disk (fsync).
  void flush();

  /// True when this session was opened in resume mode over prior records.
  bool resumed() const noexcept { return resumed_; }

  /// Records loaded from the journal at open.
  std::size_t loadedRecords() const noexcept { return replay_.size(); }

  /// lookup() hits served so far.
  std::size_t replayCount() const noexcept {
    return replayHits_.load(std::memory_order_relaxed);
  }

  /// Journaled records not yet fsynced -- the crash-loss window right now.
  /// Progress heartbeats report this as "checkpoint lag".
  int unsyncedRecords() const noexcept { return journal_.unsynced(); }

  /// Configured fsync cadence (records per fsync); heartbeats report it
  /// alongside the lag so an operator can tell "lag 31" is one record shy of
  /// a sync, not 31 syncs behind.
  int fsyncEveryN() const noexcept { return journal_.options().fsyncEveryN; }

  const std::string& path() const noexcept { return journal_.path(); }

  CheckpointSession(const CheckpointSession&) = delete;
  CheckpointSession& operator=(const CheckpointSession&) = delete;

 private:
  support::Journal journal_;
  std::map<std::string, std::vector<std::uint64_t>> replay_;
  mutable std::atomic<std::size_t> replayHits_{0};
  bool resumed_ = false;
};

}  // namespace prox::characterize
