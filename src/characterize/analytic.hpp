#pragma once
// Analytic stand-in model packages: a CharacterizedGate built from
// closed-form tables instead of transistor-level characterization.
//
// Large-graph consumers (the 100k-node STA benchmark, the 10k-node
// determinism suite, the BLIF fuzz harness) need a characterized cell per
// (gate type, fanin) but must not pay seconds of transient simulation per
// cell -- and the determinism suite additionally pins a reference checksum
// across toolchains, which rules out libm-dependent table contents.  An
// analytic gate answers both needs:
//
//   * every single-input sample and dual-table ratio comes from rational
//     arithmetic only (+, -, *, /) on exactly-representable constants, so
//     the whole STA pipeline over these cells is reproducible bit for bit
//     wherever IEEE-754 double arithmetic is;
//   * the shapes follow the real models (positive delays growing with tau
//     and fanin, proximity ratios that decay to 1 as the separation leaves
//     the window) so dominance ordering, windowing and the correction term
//     all exercise their real code paths.
//
// These packages are a modeling aid for tests and benchmarks; accuracy
// claims only ever come from characterizeGate().

#include "characterize/characterize.hpp"

namespace prox::characterize {

/// Builds the analytic package for @p spec (Inverter, Nand, or Nor of any
/// fanin >= 1).  Deterministic: equal specs yield bit-identical tables.
/// Throws std::invalid_argument for GateType::Complex (no analytic form).
CharacterizedGate analyticGate(const cells::CellSpec& spec);

}  // namespace prox::characterize
