#include "characterize/checkpoint.hpp"

#include <cstdio>

#include "obs/registry.hpp"
#include "support/durable_io.hpp"

namespace prox::characterize {

namespace {

// Canonical text rendering the fingerprint digests.  Doubles go in as raw
// bit patterns: two configs whose grids differ in the last ulp are different
// runs (their journaled results would differ in the last ulp too).
void addToken(std::string& s, const std::string& t) {
  s += ' ';
  s += t;
}

void addInt(std::string& s, long long v) { addToken(s, std::to_string(v)); }

void addDouble(std::string& s, double v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(support::doubleToBits(v)));
  addToken(s, buf);
}

void addGrid(std::string& s, const std::vector<double>& g) {
  addInt(s, static_cast<long long>(g.size()));
  for (double v : g) addDouble(s, v);
}

void addTechnology(std::string& s, const cells::Technology& tech) {
  addDouble(s, tech.vdd);
  addDouble(s, tech.coxPerArea);
  addDouble(s, tech.overlapCapPerWidth);
  addDouble(s, tech.junctionCapPerWidth);
  for (const spice::MosfetParams* p : {&tech.nmos, &tech.pmos}) {
    addInt(s, p->nmos ? 1 : 0);
    addInt(s, static_cast<long long>(p->equation));
    addDouble(s, p->w);
    addDouble(s, p->l);
    addDouble(s, p->kp);
    addDouble(s, p->vt0);
    addDouble(s, p->lambda);
    addDouble(s, p->gamma);
    addDouble(s, p->phi);
    addDouble(s, p->alpha);
    addDouble(s, p->pc);
    addDouble(s, p->pv);
  }
}

// Result-affecting configuration fields only: threads and the checkpoint /
// cancel bindings are execution knobs and deliberately absent, so a journal
// written at --threads=8 resumes under --threads=1 (and vice versa).
void addConfig(std::string& s, const CharacterizationConfig& config) {
  addGrid(s, config.tauGrid);
  addInt(s, static_cast<long long>(config.dualTauIndices.size()));
  for (std::size_t idx : config.dualTauIndices) {
    addInt(s, static_cast<long long>(idx));
  }
  addGrid(s, config.vGrid);
  addGrid(s, config.wGrid);
  addGrid(s, config.vGridTransition);
  addGrid(s, config.wGridTransition);
  addDouble(s, config.vtcStep);
  addDouble(s, config.stepTau);
  addInt(s, config.partnerOffset);
  addInt(s, config.healPointFailures ? 1 : 0);
  addInt(s, config.pointRetries);
}

std::string digest(const std::string& text) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%08x",
                static_cast<unsigned>(support::crc32(text)));
  return std::string("ckpt1-") + buf;
}

std::string replayKey(const std::string& scope, std::uint64_t index) {
  return scope + '#' + std::to_string(index);
}

}  // namespace

std::string configFingerprint(const cells::CellSpec& spec,
                              const CharacterizationConfig& config) {
  std::string s = "cell";
  addToken(s, cells::gateTypeName(spec.type, spec.fanin));
  addInt(s, spec.fanin);
  addDouble(s, spec.wn);
  addDouble(s, spec.wp);
  addDouble(s, spec.loadCap);
  addTechnology(s, spec.tech);
  addConfig(s, config);
  return digest(s);
}

std::string configFingerprint(const cells::ComplexCellSpec& spec,
                              const CharacterizationConfig& config) {
  std::string s = "complex";
  addToken(s, spec.pulldown.toString());
  addDouble(s, spec.wn);
  addDouble(s, spec.wp);
  addDouble(s, spec.loadCap);
  addTechnology(s, spec.tech);
  addConfig(s, config);
  return digest(s);
}

CheckpointSession::CheckpointSession(
    const std::string& path, const std::string& fingerprint, bool resume,
    const support::Journal::Options& journalOptions) {
  journal_.setOptions(journalOptions);
  if (resume) {
    std::vector<support::JournalRecord> records =
        journal_.openResume(path, fingerprint);
    resumed_ = !records.empty();
    for (support::JournalRecord& r : records) {
      // Duplicate (scope, index) pairs cannot arise from the sweep engine
      // (each task records at most once), but a journal that resumed twice
      // may carry recomputed points near a torn tail; last record wins,
      // matching what the final computation wrote.
      replay_[replayKey(r.scope, r.index)] = std::move(r.words);
    }
  } else {
    journal_.openFresh(path, fingerprint);
  }
}

bool CheckpointSession::lookup(const std::string& scope, std::uint64_t index,
                               std::vector<std::uint64_t>* words) const {
  const auto it = replay_.find(replayKey(scope, index));
  if (it == replay_.end()) return false;
  *words = it->second;
  replayHits_.fetch_add(1, std::memory_order_relaxed);
  PROX_OBS_COUNT("characterize.checkpoint.points_replayed", 1);
  return true;
}

void CheckpointSession::record(const std::string& scope, std::uint64_t index,
                               const std::vector<std::uint64_t>& words) {
  journal_.append(scope, index, words);
  PROX_OBS_COUNT("characterize.checkpoint.points_recorded", 1);
}

void CheckpointSession::flush() {
  if (journal_.isOpen()) journal_.sync();
}

}  // namespace prox::characterize
