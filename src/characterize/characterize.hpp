#pragma once
// Cell characterization flow: runs the transistor-level simulator over
// controlled stimulus grids and produces the deployable macromodel package
// for one gate:
//   * Section 2 thresholds (min V_il / max V_ih over all VTCs),
//   * single-input macromodels Delta^(1)/tau^(1) per (pin, edge),
//   * dual-input 3-D ratio tables per (reference pin, edge) -- the paper's
//     "2n macromodels for delay plus 2n for transition time" footprint,
//   * simultaneous-step corrective terms per input count and edge.

#include <memory>

#include "model/dual_input.hpp"
#include "model/proximity.hpp"
#include "support/diagnostic.hpp"

namespace prox::support {
class CancelToken;  // support/cancel.hpp
}  // namespace prox::support

namespace prox::characterize {

class CheckpointSession;  // characterize/checkpoint.hpp

struct CharacterizationConfig {
  /// Input transition-time grid for the single-input models [s].
  std::vector<double> tauGrid = {50e-12,  100e-12, 200e-12, 400e-12,
                                 700e-12, 1100e-12, 1600e-12, 2200e-12};
  /// Subset of tauGrid used as the dual-table reference-tau axis (indices).
  std::vector<std::size_t> dualTauIndices = {0, 2, 4, 6, 7};
  /// Other-input tau as a multiple of the reference Delta^(1) (v axis).
  /// The 0.1 anchor matters: simultaneous fast steps (the corrective-term
  /// characterization point) sit near v ~ 0.13, and clamping them to a
  /// coarser boundary poisons the correction.
  std::vector<double> vGrid = {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  /// Separation as a multiple of the reference Delta^(1) (w axis).  The
  /// delay proximity window ends at exactly w = 1.
  std::vector<double> wGrid = {-3.0, -2.0, -1.5, -1.0, -0.6, -0.3,
                               0.0,  0.2,  0.4,  0.6,  0.8,  1.0};
  /// Transition-table axes are normalized by tau^(1), which is typically
  /// several times smaller than Delta^(1): the other-input tau ratio can
  /// reach ~10 and the transition window extends to (Delta^(1)+tau^(1))/
  /// tau^(1), so both axes span wider ranges than the delay table's.
  std::vector<double> vGridTransition = {0.1, 0.25, 0.5, 1.0,
                                         2.0, 4.0,  8.0, 12.0};
  std::vector<double> wGridTransition = {-3.0, -2.0, -1.0, -0.5, 0.0, 0.5,
                                         1.0,  1.5,  2.0,  3.0,  4.5, 6.0};
  /// DC sweep increment for VTC extraction [V].
  double vtcStep = 0.01;
  /// Transition time used for the "step" in correction characterization [s].
  double stepTau = 50e-12;
  /// Representative partner pin when characterizing reference pin p is
  /// (p + partnerOffset) mod fanin.
  int partnerOffset = 1;
  /// Fault tolerance: a sweep point whose transistor-level transient fails is
  /// retried (pointRetries extra attempts) and, if still failing, left as a
  /// hole that neighbor interpolation heals after the sweep -- the table
  /// marks the point healed and the sweep completes instead of aborting.
  /// false restores fail-fast characterization.
  bool healPointFailures = true;
  int pointRetries = 1;
  /// Worker threads for the sweep engine: 1 (default) runs the legacy serial
  /// path on the calling thread; 0 resolves to par::defaultThreadCount()
  /// (PROX_THREADS env, else hardware concurrency); N > 1 runs every sweep
  /// point / correction term as a pool task.  Results are bit-identical at
  /// any thread count (see DESIGN.md "Parallel execution & determinism
  /// contract").
  int threads = 1;
  /// Crash-safe checkpointing: when set, every computed result (single-input
  /// table, dual-table sweep point, correction term) is journaled through
  /// the session and previously journaled results are replayed instead of
  /// re-simulated -- the `--checkpoint/--resume` machinery (checkpoint.hpp).
  /// Excluded from the checkpoint fingerprint (execution knob).  Not owned.
  CheckpointSession* checkpoint = nullptr;
  /// Cooperative cancellation: when set, sweep loops stop issuing points
  /// once the token trips and the flow unwinds with the token's typed
  /// DiagnosticError (Cancelled / DeadlineExceeded), leaving any checkpoint
  /// partial but valid.  Excluded from the fingerprint.  Not owned.
  support::CancelToken* cancel = nullptr;
  /// Progress heartbeat: > 0 prints a line to stderr roughly every this many
  /// seconds during the dual-table sweeps (points done, points/sec, ETA,
  /// checkpoint lag) and emits matching trace counters when a TraceSession
  /// is active.  0 (default) disables the heartbeat.  Purely observational:
  /// results are bit-identical either way.  Excluded from the fingerprint.
  double progressIntervalSeconds = 0.0;
};

/// The complete characterized model package for one gate.  Move-only: the
/// dual model refers to the singles set through a stable heap address.
class CharacterizedGate {
 public:
  model::Gate gate;
  std::unique_ptr<model::SingleInputModelSet> singles;
  std::unique_ptr<model::TabulatedDualInputModel> dual;
  model::StepCorrection correction;
  /// Per-point failures the healing machinery absorbed (Warning severity) --
  /// empty when the characterization ran clean.  `--strict` front ends
  /// promote a non-empty log to a hard error.
  support::DiagnosticLog diagnostics;

  /// Convenience: a ProximityCalculator over this package's tables.  Complex
  /// gates get the structural dominance-sense resolver automatically.
  model::ProximityCalculator calculator(
      model::ProximityOptions options = {}) const {
    if (gate.complex) {
      return model::ProximityCalculator(model::senseResolverFor(*gate.complex),
                                        *singles, *dual, correction, options);
    }
    return model::ProximityCalculator(gate.spec.type, *singles, *dual,
                                      correction, options);
  }

  int pinCount() const { return gate.pinCount(); }
};

/// Characterizes @p spec end to end.  This is the expensive offline step
/// (hundreds of transistor-level transients); the returned package answers
/// delay queries in microseconds.
CharacterizedGate characterizeGate(const cells::CellSpec& spec,
                                   const CharacterizationConfig& config = {});

/// Complex-gate (AOI/OAI) variant of the same flow.  Non-sensitizable pin
/// pairs fall back to identity dual tables; non-sensitizable prefixes are
/// skipped in the correction characterization.
CharacterizedGate characterizeComplexGate(
    const cells::ComplexCellSpec& spec,
    const CharacterizationConfig& config = {});

/// Builds one dual-input ratio-table pair (delay + transition) for a
/// reference pin/edge using the oracle.  Exposed for tests and for the
/// storage-complexity bench.  Per-point failures are retried and healed per
/// config.healPointFailures; healed points are recorded in @p log (when
/// non-null) at Warning severity and marked in the tables.  @p scopePrefix
/// namespaces this sweep's checkpoint records (the per-reference tables use
/// the default "dual"; the complex-gate pair matrix passes "pair" so both
/// sweeps over the same pin pair stay distinct in the journal).
void buildDualTables(model::GateSimulator& sim,
                     const model::SingleInputModelSet& singles, int refPin,
                     int otherPin, wave::Edge edge,
                     const CharacterizationConfig& config,
                     model::DualTable* delayTable,
                     model::DualTable* transitionTable,
                     support::DiagnosticLog* log = nullptr,
                     const char* scopePrefix = "dual");

/// Characterizes the simultaneous-step corrective terms for the gate given
/// an (uncorrected) calculator over @p dual.  Returns signed errors
/// (simulated minus modeled) for input counts 2..fanin.  When @p healFailures
/// is set, a failed correction point degrades to a zero corrective term
/// (recorded in @p log) instead of aborting.  @p threads > 1 evaluates the
/// correction points on the pool (each with its own simulator); this
/// requires a thread-safe @p dual (the tabulated model is; the oracle shares
/// one simulator and is not), so leave threads at 1 when passing an oracle.
/// @p cancel and @p checkpoint bind the correction sweep to the cooperative
/// cancellation / crash-safe checkpoint machinery (scope "corr").
model::StepCorrection characterizeStepCorrection(
    model::GateSimulator& sim, const model::SingleInputModelSet& singles,
    const model::DualInputModel& dual, double stepTau,
    bool healFailures = true, support::DiagnosticLog* log = nullptr,
    int threads = 1, support::CancelToken* cancel = nullptr,
    CheckpointSession* checkpoint = nullptr);

}  // namespace prox::characterize
