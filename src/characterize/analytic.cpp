#include "characterize/analytic.hpp"

#include <stdexcept>

namespace prox::characterize {

namespace {

using cells::GateType;
using model::DualTable;
using model::SingleInputModel;
using wave::Edge;

/// Per-type timing coefficients.  All values are exactly representable
/// (powers of two scaled by small integers) so downstream arithmetic starts
/// from identical bits on every platform.
struct Coeffs {
  double d0;      ///< base delay [s]
  double dSlope;  ///< delay growth per second of input tau
  double t0;      ///< base transition [s]
  double tSlope;  ///< transition growth per second of input tau
};

Coeffs coeffsFor(GateType type, int fanin) {
  const double stack = 0.015625e-9 * (fanin - 1);  // 15.625 ps per extra input
  switch (type) {
    case GateType::Inverter:
      return {0.078125e-9, 0.25, 0.0625e-9, 0.4375};
    case GateType::Nand:
      return {0.125e-9 + stack, 0.3125, 0.09375e-9 + 0.5 * stack, 0.5};
    case GateType::Nor:
      return {0.15625e-9 + 1.5 * stack, 0.375, 0.109375e-9 + 0.5 * stack,
              0.5625};
    case GateType::Complex:
      break;
  }
  throw std::invalid_argument("analyticGate: no analytic form for this type");
}

/// Per-(pin, edge) scale: deeper stack positions are a little slower, and
/// falling responses differ from rising ones so edge asymmetry is exercised.
double pinEdgeScale(int pin, Edge edge) {
  return 1.0 + 0.046875 * pin + (edge == Edge::Falling ? 0.09375 : 0.0);
}

SingleInputModel analyticSingle(const cells::CellSpec& spec, int pin,
                                Edge edge) {
  const Coeffs c = coeffsFor(spec.type, spec.fanin);
  const double scale = pinEdgeScale(pin, edge);
  // Grid spans the same decades the characterized tauGrid does.
  static const double kTauGrid[] = {0.05e-9, 0.2e-9, 0.8e-9, 2.4e-9};
  std::vector<SingleInputModel::Sample> table;
  table.reserve(std::size(kTauGrid));
  for (const double tau : kTauGrid) {
    SingleInputModel::Sample s;
    s.tau = tau;
    s.delay = scale * (c.d0 + c.dSlope * tau);
    s.transition = scale * (c.t0 + c.tSlope * tau);
    table.push_back(s);
  }
  return SingleInputModel(pin, edge, std::move(table), spec.loadCap, 1.0e-3,
                          spec.tech.vdd);
}

/// Proximity decay profile over the separation axis: 1 at the near edge of
/// the window, 0 at the far edge, linear in between.  Rational arithmetic
/// only.
double windowFactor(double w, double wMin, double wMax) {
  if (w >= wMax) return 0.0;
  if (w <= wMin) return 1.0;
  return (wMax - w) / (wMax - wMin);
}

DualTable analyticDualTable(int pin, Edge edge, bool transition) {
  DualTable t;
  // Delay window ends at exactly w = 1 (the paper's convention); the
  // transition window extends further.
  if (transition) {
    t.u = {0.125, 0.5, 1.0, 2.0, 8.0};
    t.v = {0.125, 0.5, 1.0, 2.0, 8.0};
    t.w = {-3.0, -1.0, 0.0, 1.0, 2.5, 5.0};
  } else {
    t.u = {0.125, 0.5, 1.0, 2.0, 6.0};
    t.v = {0.125, 0.5, 1.0, 2.0, 6.0};
    t.w = {-3.0, -1.5, -0.5, 0.0, 0.5, 1.0};
  }
  const double wMin = t.w.front();
  const double wMax = t.w.back();
  // Strength of the proximity effect: grows with the other input's relative
  // slowness, varies per pin/edge so dominance relabeling matters.
  const double amp = (transition ? 0.28125 : 0.1875) + 0.015625 * pin +
                     (edge == Edge::Falling ? 0.03125 : 0.0);
  t.ratio.reserve(t.u.size() * t.v.size() * t.w.size());
  for (const double u : t.u) {
    for (const double v : t.v) {
      for (const double w : t.w) {
        const double vEff = v / (1.0 + v);     // in (0, 1): slower partner
        const double uEff = 1.0 / (1.0 + u);   // faster reference amplifies
        t.ratio.push_back(1.0 +
                          amp * vEff * (0.5 + uEff) *
                              windowFactor(w, wMin, wMax));
      }
    }
  }
  return t;
}

}  // namespace

CharacterizedGate analyticGate(const cells::CellSpec& spec) {
  if (spec.type == GateType::Complex) {
    throw std::invalid_argument("analyticGate: no analytic form for complex "
                                "gates -- use characterizeComplexGate");
  }
  if (spec.fanin < 1 ||
      (spec.type == GateType::Inverter && spec.fanin != 1)) {
    throw std::invalid_argument("analyticGate: invalid fanin");
  }

  CharacterizedGate out;
  out.gate.spec = spec;
  // Section 2 thresholds, fixed analytically: V_il / V_ih at 40% / 60% of
  // the rail.  Only the measurement conventions depend on these.
  out.gate.thresholds.vil = 0.4 * spec.tech.vdd;
  out.gate.thresholds.vih = 0.6 * spec.tech.vdd;

  out.singles = std::make_unique<model::SingleInputModelSet>();
  const int pins = out.gate.pinCount();
  for (int pin = 0; pin < pins; ++pin) {
    for (const Edge e : {Edge::Rising, Edge::Falling}) {
      out.singles->set(analyticSingle(spec, pin, e));
    }
  }

  out.dual = std::make_unique<model::TabulatedDualInputModel>(*out.singles);
  for (int pin = 0; pin < pins; ++pin) {
    for (const Edge e : {Edge::Rising, Edge::Falling}) {
      out.dual->setDelayTable(pin, e, analyticDualTable(pin, e, false));
      out.dual->setTransitionTable(pin, e, analyticDualTable(pin, e, true));
    }
  }

  // Simultaneous-step corrective terms for 2..fanin inputs: small signed
  // errors with the sign structure the real characterization produces.
  for (int k = 2; k <= pins; ++k) {
    const double mag = 0.00390625e-9 * (k - 1);  // ~3.9 ps per extra input
    out.correction.delayErrorRising.push_back(mag);
    out.correction.delayErrorFalling.push_back(-0.75 * mag);
    out.correction.transitionErrorRising.push_back(0.5 * mag);
    out.correction.transitionErrorFalling.push_back(-0.5 * mag);
  }
  return out;
}

}  // namespace prox::characterize
