#include "characterize/serialize.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/registry.hpp"
#include "support/bounded.hpp"
#include "support/budget.hpp"
#include "support/diagnostic.hpp"
#include "support/durable_io.hpp"

namespace prox::characterize {

namespace {

constexpr const char* kMagic = "proxdelay-model";
// Version 2 adds the optional per-table "healed" section; version 3 appends
// a trailing "crc32 <8hex>" integrity line.  Version-1 and -2 files (no
// healed marks / no CRC) still load.
constexpr int kVersion = 3;

constexpr const char* kSite = "characterize.serialize";

// Ingestion ceilings (see support/bounded.hpp for the threat model).  The
// largest legitimate axis this repo characterizes has a few dozen points, so
// 4096 per axis is orders of magnitude of headroom while capping a single
// declared table at 4096^3 cells -- which the per-table cell cap and the
// input-derived allocation budget then shrink to something proportional to
// the actual file size.
constexpr std::size_t kMaxAxisPoints = 4096;
constexpr std::size_t kMaxTableCells = 1u << 22;  // 4M doubles = 32 MiB
constexpr std::size_t kMaxTokenBytes = 1u << 20;
constexpr std::size_t kMaxModelBytes = 64u << 20;

/// CRC-32 over the *token stream*: each whitespace-delimited token's bytes
/// followed by a single '\n' separator.  Tokenizing first makes the checksum
/// independent of whitespace layout, so it survives any reformatting that
/// preserves the token sequence -- exactly what the parser is sensitive to.
std::uint32_t tokenStreamCrc(std::string_view text) {
  std::uint32_t crc = support::kCrc32Init;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    const std::size_t begin = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    crc = support::crc32Update(crc, text.data() + begin, i - begin);
    static constexpr char kSep = '\n';
    crc = support::crc32Update(crc, &kSep, 1);
  }
  return support::crc32Final(crc);
}

char edgeChar(wave::Edge e) { return e == wave::Edge::Rising ? 'R' : 'F'; }

/// Whitespace-token reader over the .prox stream that tracks 1-based line
/// numbers so every parse diagnostic can point at its source line.
class Reader {
 public:
  /// @p budget, when non-null, is charged for every container the caller
  /// allocates from parsed counts (input-size-derived cap).
  explicit Reader(std::istream& is, support::AllocationBudget* budget = nullptr)
      : is_(is), budget_(budget) {}

  /// Line of the most recently returned token.
  int line() const { return lastLine_; }

  support::AllocationBudget* budget() const { return budget_; }

  [[noreturn]] void fail(const std::string& msg) const {
    PROX_OBS_COUNT("characterize.serialize.parse_errors", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::ParseError,
                                "loadGateModel: " + msg)
            .withSite(kSite)
            .withLine(lastLine_));
  }

  /// Next token; fails with a typed truncation diagnostic at end of input.
  std::string next(const char* what) {
    std::string t = rawNext();
    if (t.empty()) fail(std::string("unexpected end of file reading ") + what);
    return t;
  }

  /// Next token without consuming it; empty at end of input.
  const std::string& peek() {
    if (!havePending_) {
      const int before = lastLine_;
      pending_ = rawNext();
      pendingLine_ = lastLine_;
      lastLine_ = before;
      havePending_ = true;
    }
    return pending_;
  }

  /// Consumes the next token and fails unless it equals @p tag.
  void expect(const char* tag) {
    const std::string t = next(tag);
    if (t != tag) {
      fail(std::string("expected '") + tag + "', got '" + t + "'");
    }
  }

  double number(const char* what) {
    const std::string t = next(what);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size() || errno == ERANGE) {
      fail(std::string("malformed number '") + t + "' in " + what);
    }
    return v;
  }

  /// A number that must be finite (grids, table entries, device params).
  double finiteNumber(const char* what) {
    const double v = number(what);
    if (!std::isfinite(v)) {
      fail(std::string("non-finite value in ") + what);
    }
    return v;
  }

  long integer(const char* what) {
    const std::string t = next(what);
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (end != t.c_str() + t.size() || errno == ERANGE) {
      fail(std::string("malformed integer '") + t + "' in " + what);
    }
    return v;
  }

  std::size_t count(const char* what, std::size_t cap = kMaxTableCells) {
    const long v = integer(what);
    if (v < 0) {
      fail(std::string("negative count in ") + what);
    }
    if (static_cast<std::size_t>(v) > cap) {
      PROX_OBS_COUNT("characterize.serialize.cap_rejections", 1);
      fail(std::string("count ") + std::to_string(v) + " in " + what +
           " exceeds ceiling " + std::to_string(cap));
    }
    return static_cast<std::size_t>(v);
  }

  /// Token-stream CRC over every token *produced from the stream* so far
  /// (tokens sitting in the peek cache are already included).  The version-3
  /// verifier snapshots this immediately after consuming "end", before the
  /// trailing crc32 tokens are read.
  std::uint32_t crc() const { return support::crc32Final(crcAccum_); }

 private:
  std::string rawNext() {
    if (havePending_) {
      havePending_ = false;
      lastLine_ = pendingLine_;
      return std::move(pending_);
    }
    std::string t;
    int c;
    while ((c = is_.get()) != EOF) {
      if (c == '\n') {
        ++line_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      break;
    }
    if (c == EOF) {
      lastLine_ = line_;
      return t;
    }
    lastLine_ = line_;
    t.push_back(static_cast<char>(c));
    while ((c = is_.get()) != EOF &&
           !std::isspace(static_cast<unsigned char>(c))) {
      if (t.size() >= kMaxTokenBytes) {
        PROX_OBS_COUNT("characterize.serialize.parse_errors", 1);
        support::failResource(
            kSite, "loadGateModel: token exceeds " +
                       std::to_string(kMaxTokenBytes) + " bytes",
            lastLine_);
      }
      t.push_back(static_cast<char>(c));
    }
    if (c == '\n') ++line_;
    crcAccum_ = support::crc32Update(crcAccum_, t.data(), t.size());
    static constexpr char kSep = '\n';
    crcAccum_ = support::crc32Update(crcAccum_, &kSep, 1);
    return t;
  }

  std::istream& is_;
  support::AllocationBudget* budget_ = nullptr;
  int line_ = 1;      ///< line the read cursor is on
  int lastLine_ = 1;  ///< line of the last returned token
  std::string pending_;
  int pendingLine_ = 1;
  bool havePending_ = false;
  std::uint32_t crcAccum_ = support::kCrc32Init;
};

wave::Edge parseEdge(Reader& r) {
  const std::string s = r.next("edge tag");
  if (s == "R") return wave::Edge::Rising;
  if (s == "F") return wave::Edge::Falling;
  r.fail("bad edge tag '" + s + "'");
}

std::string gateTag(cells::GateType t) {
  switch (t) {
    case cells::GateType::Inverter: return "INV";
    case cells::GateType::Nand: return "NAND";
    case cells::GateType::Nor: return "NOR";
    case cells::GateType::Complex: return "COMPLEX";
  }
  return "?";
}

cells::GateType parseGateTag(Reader& r, const std::string& s) {
  if (s == "INV") return cells::GateType::Inverter;
  if (s == "NAND") return cells::GateType::Nand;
  if (s == "NOR") return cells::GateType::Nor;
  if (s == "COMPLEX") return cells::GateType::Complex;
  r.fail("bad gate tag '" + s + "'");
}

void writeMos(std::ostream& os, const char* tag, const spice::MosfetParams& p) {
  os << tag << ' ' << p.kp << ' ' << p.vt0 << ' ' << p.lambda << ' ' << p.gamma
     << ' ' << p.phi << ' ' << p.w << ' ' << p.l << ' '
     << (p.equation == spice::MosEquation::AlphaPower ? 14 : 1) << ' '
     << p.alpha << ' ' << p.pc << ' ' << p.pv << '\n';
}

void readMos(Reader& r, const char* tag, bool nmos, spice::MosfetParams* p) {
  r.expect(tag);
  p->nmos = nmos;
  p->kp = r.finiteNumber(tag);
  p->vt0 = r.finiteNumber(tag);
  p->lambda = r.finiteNumber(tag);
  p->gamma = r.finiteNumber(tag);
  p->phi = r.finiteNumber(tag);
  p->w = r.finiteNumber(tag);
  p->l = r.finiteNumber(tag);
  const long level = r.integer(tag);
  p->alpha = r.finiteNumber(tag);
  p->pc = r.finiteNumber(tag);
  p->pv = r.finiteNumber(tag);
  p->equation = level == 14 ? spice::MosEquation::AlphaPower
                            : spice::MosEquation::Level1;
}

void writeVector(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> readVector(Reader& r, const char* what,
                               std::size_t cap = kMaxTableCells) {
  const std::size_t n = r.count(what, cap);
  // Charge the declared size against the input-derived allocation budget
  // *before* resizing: a short hostile file cannot declare its way into a
  // multi-GB allocation.
  if (support::AllocationBudget* b = r.budget()) {
    b->chargeItems(n, sizeof(double), what, r.line());
  }
  std::vector<double> v(n);
  for (double& x : v) x = r.finiteNumber(what);
  return v;
}

/// A vector that must additionally be a strictly ascending grid axis no
/// longer than kMaxAxisPoints.
std::vector<double> readGrid(Reader& r, const char* what) {
  std::vector<double> v = readVector(r, what, kMaxAxisPoints);
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (!(v[i] > v[i - 1])) {
      r.fail(std::string(what) + " not strictly ascending");
    }
  }
  return v;
}

void writeDualTable2(std::ostream& os, const model::DualTable& t) {
  writeVector(os, t.u);
  writeVector(os, t.v);
  writeVector(os, t.w);
  writeVector(os, t.ratio);
  const std::size_t healed = t.healedCount();
  if (healed > 0) {
    os << "healed " << healed;
    for (std::size_t i = 0; i < t.healed.size(); ++i) {
      if (t.healed[i] != 0) os << ' ' << i;
    }
    os << '\n';
  }
}

void writeDualTable(std::ostream& os, const char* tag, int pin, wave::Edge e,
                    const model::DualTable& t) {
  os << tag << ' ' << pin << ' ' << edgeChar(e) << '\n';
  writeDualTable2(os, t);
}

model::DualTable readDualTable(Reader& r) {
  support::budgetChargeTables(1, kSite);
  support::budgetCheckRss(kSite);
  model::DualTable t;
  t.u = readGrid(r, "dual table u grid");
  t.v = readGrid(r, "dual table v grid");
  t.w = readGrid(r, "dual table w grid");
  t.ratio = readVector(r, "dual table ratio");
  if (t.ratio.size() != t.u.size() * t.v.size() * t.w.size()) {
    r.fail("dual table size mismatch");
  }
  if (r.peek() == "healed") {
    r.next("healed tag");
    const std::size_t n = r.count("healed point count", t.ratio.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = r.count("healed point index", t.ratio.size());
      if (idx >= t.ratio.size()) r.fail("healed point index out of range");
      const std::size_t iw = idx % t.w.size();
      const std::size_t iv = (idx / t.w.size()) % t.v.size();
      const std::size_t iu = idx / (t.w.size() * t.v.size());
      t.markHealed(iu, iv, iw);
    }
  }
  return t;
}

void writeModelBody(const CharacterizedGate& g, std::ostream& os) {
  os << std::setprecision(17);
  const cells::CellSpec& s = g.gate.spec;
  os << kMagic << ' ' << kVersion << '\n';
  os << "gate " << gateTag(s.type) << ' ' << s.fanin << '\n';
  if (g.gate.complex) {
    os << "pullnet " << g.gate.complex->pulldown.toString() << '\n';
  }
  os << "sizing " << s.wn << ' ' << s.wp << ' ' << s.loadCap << '\n';
  os << "vdd " << s.tech.vdd << '\n';
  writeMos(os, "nmos", s.tech.nmos);
  writeMos(os, "pmos", s.tech.pmos);
  os << "caps " << s.tech.coxPerArea << ' ' << s.tech.overlapCapPerWidth << ' '
     << s.tech.junctionCapPerWidth << '\n';
  os << "thresholds " << g.gate.thresholds.vil << ' ' << g.gate.thresholds.vih
     << '\n';

  const int n = g.pinCount();
  for (int pin = 0; pin < n; ++pin) {
    for (wave::Edge e : {wave::Edge::Rising, wave::Edge::Falling}) {
      const model::SingleInputModel& m = g.singles->at(pin, e);
      os << "single " << pin << ' ' << edgeChar(e) << ' ' << m.loadCap() << ' '
         << m.strengthK() << ' ' << m.vdd() << ' ' << m.table().size() << '\n';
      for (const auto& row : m.table()) {
        os << row.tau << ' ' << row.delay << ' ' << row.transition << '\n';
      }
    }
  }
  for (int pin = 0; pin < n; ++pin) {
    for (wave::Edge e : {wave::Edge::Rising, wave::Edge::Falling}) {
      writeDualTable(os, "dualdelay", pin, e, g.dual->delayTable(pin, e));
      writeDualTable(os, "dualtrans", pin, e, g.dual->transitionTable(pin, e));
    }
  }
  for (const auto& [ref, other, e] : g.dual->pairKeys()) {
    os << "pairdelay " << ref << ' ' << other << ' ' << edgeChar(e) << '\n';
    writeDualTable2(os, g.dual->pairDelayTable(ref, other, e));
    os << "pairtrans " << ref << ' ' << other << ' ' << edgeChar(e) << '\n';
    writeDualTable2(os, g.dual->pairTransitionTable(ref, other, e));
  }
  os << "correction\n";
  writeVector(os, g.correction.delayErrorRising);
  writeVector(os, g.correction.delayErrorFalling);
  writeVector(os, g.correction.transitionErrorRising);
  writeVector(os, g.correction.transitionErrorFalling);
  os << "end\n";
}

}  // namespace

void saveGateModel(const CharacterizedGate& g, std::ostream& os) {
  // The body is rendered once and checksummed as a token stream; the
  // trailing crc32 line lets the loader distinguish a truncated or
  // bit-flipped file from a well-formed one even when the damage happens to
  // parse (e.g. a corrupted digit inside a ratio table).
  std::ostringstream body;
  writeModelBody(g, body);
  const std::string text = body.str();
  char crcHex[12];
  std::snprintf(crcHex, sizeof(crcHex), "%08x",
                static_cast<unsigned>(tokenStreamCrc(text)));
  os << text << "crc32 " << crcHex << '\n';
}

void saveGateModel(const CharacterizedGate& g, const std::string& path) {
  // Atomic commit: the model lands under its final name complete or not at
  // all, so a crash (or disk-full failure) mid-save can never leave a torn
  // .prox where a previous good one stood.
  support::writeFileAtomic(path,
                           [&](std::ostream& os) { saveGateModel(g, os); });
}

CharacterizedGate loadGateModel(std::istream& is) {
  // Slurp once through the bounded reader: the whole-input size cap applies
  // before any parsing, and the input size seeds the allocation budget that
  // every declared count below is charged against.
  const std::string text = support::readStreamBounded(is, kMaxModelBytes, kSite);
  support::AllocationBudget budget(kSite, text.size());
  std::istringstream in(text);
  Reader r(in, &budget);
  const std::string magic = r.next("header magic");
  const long version = r.integer("header version");
  if (magic != kMagic || version < 1 || version > kVersion) {
    r.fail("bad header");
  }

  CharacterizedGate g;
  cells::CellSpec& s = g.gate.spec;

  r.expect("gate");
  const std::string gateWord = r.next("gate tag");
  s.type = parseGateTag(r, gateWord);
  s.fanin = static_cast<int>(r.integer("gate fanin"));
  // The fanin drives every per-pin loop below; an absurd value is corruption,
  // not a gate.  64 inputs is far beyond anything this library characterizes.
  constexpr int kMaxFanin = 64;
  if (s.fanin < 1 || s.fanin > kMaxFanin) {
    r.fail("gate fanin " + std::to_string(s.fanin) + " outside [1, " +
           std::to_string(kMaxFanin) + "]");
  }

  std::string pullExprText;
  if (s.type == cells::GateType::Complex) {
    r.expect("pullnet");
    pullExprText = r.next("pullnet expression");
  }

  r.expect("sizing");
  s.wn = r.finiteNumber("sizing");
  s.wp = r.finiteNumber("sizing");
  s.loadCap = r.finiteNumber("sizing");

  r.expect("vdd");
  s.tech.vdd = r.finiteNumber("vdd");
  readMos(r, "nmos", true, &s.tech.nmos);
  readMos(r, "pmos", false, &s.tech.pmos);
  r.expect("caps");
  s.tech.coxPerArea = r.finiteNumber("caps");
  s.tech.overlapCapPerWidth = r.finiteNumber("caps");
  s.tech.junctionCapPerWidth = r.finiteNumber("caps");

  r.expect("thresholds");
  g.gate.thresholds.vil = r.finiteNumber("thresholds");
  g.gate.thresholds.vih = r.finiteNumber("thresholds");

  if (s.type == cells::GateType::Complex) {
    cells::ComplexCellSpec cs;
    try {
      cs.pulldown = cells::PullExpr::parse(pullExprText);
    } catch (const std::exception& e) {
      r.fail(std::string("bad pullnet expression: ") + e.what());
    }
    cs.tech = s.tech;
    cs.wn = s.wn;
    cs.wp = s.wp;
    cs.loadCap = s.loadCap;
    if (cs.pinCount() != s.fanin) {
      r.fail("pullnet pin count mismatch");
    }
    g.gate.complex = cs;
  }

  g.singles = std::make_unique<model::SingleInputModelSet>();
  const int n = g.pinCount();
  std::set<std::string> seenSections;
  const auto requireUnique = [&](const std::string& key) {
    if (!seenSections.insert(key).second) {
      r.fail("duplicate section '" + key + "'");
    }
  };
  const auto requirePin = [&](int pin, const char* what) {
    if (pin < 0 || pin >= n) {
      r.fail(std::string(what) + " pin " + std::to_string(pin) +
             " outside [0, " + std::to_string(n) + ")");
    }
  };
  for (int i = 0; i < n * 2; ++i) {
    r.expect("single");
    support::budgetChargeTables(1, kSite);
    const int pin = static_cast<int>(r.integer("single pin"));
    requirePin(pin, "single table");
    const wave::Edge edge = parseEdge(r);
    requireUnique(std::string("single ") + std::to_string(pin) + ' ' +
                  edgeChar(edge));
    const double loadCap = r.finiteNumber("single table");
    const double k = r.finiteNumber("single table");
    const double vdd = r.finiteNumber("single table");
    const std::size_t rows = r.count("single table rows");
    if (support::AllocationBudget* b = r.budget()) {
      b->chargeItems(rows, sizeof(model::SingleInputModel::Sample),
                     "single table rows", r.line());
    }
    std::vector<model::SingleInputModel::Sample> table(rows);
    for (auto& row : table) {
      row.tau = r.finiteNumber("single table row");
      row.delay = r.finiteNumber("single table row");
      row.transition = r.finiteNumber("single table row");
    }
    g.singles->set(
        model::SingleInputModel(pin, edge, std::move(table), loadCap, k, vdd));
  }

  g.dual = std::make_unique<model::TabulatedDualInputModel>(*g.singles);
  // Tag-driven section: per-reference tables, optional pair tables, then the
  // correction block terminates the loop.
  while (true) {
    const std::string word = r.next("dual section tag");
    if (word == "correction") break;
    if (word == "dualdelay" || word == "dualtrans") {
      const int pin = static_cast<int>(r.integer("dual table pin"));
      requirePin(pin, word.c_str());
      const wave::Edge edge = parseEdge(r);
      requireUnique(word + ' ' + std::to_string(pin) + ' ' + edgeChar(edge));
      if (word == "dualdelay") {
        g.dual->setDelayTable(pin, edge, readDualTable(r));
      } else {
        g.dual->setTransitionTable(pin, edge, readDualTable(r));
      }
    } else if (word == "pairdelay" || word == "pairtrans") {
      const int ref = static_cast<int>(r.integer("pair table ref pin"));
      requirePin(ref, word.c_str());
      const int other = static_cast<int>(r.integer("pair table other pin"));
      requirePin(other, word.c_str());
      const wave::Edge edge = parseEdge(r);
      requireUnique(word + ' ' + std::to_string(ref) + ' ' +
                    std::to_string(other) + ' ' + edgeChar(edge));
      if (word == "pairdelay") {
        g.dual->setPairDelayTable(ref, other, edge, readDualTable(r));
      } else {
        g.dual->setPairTransitionTable(ref, other, edge, readDualTable(r));
      }
    } else {
      r.fail("unexpected section '" + word + "'");
    }
  }
  g.correction.delayErrorRising = readVector(r, "correction");
  g.correction.delayErrorFalling = readVector(r, "correction");
  g.correction.transitionErrorRising = readVector(r, "correction");
  g.correction.transitionErrorFalling = readVector(r, "correction");

  r.expect("end");
  // Snapshot before touching the crc32 tokens: the stored checksum covers
  // every token up to and including "end".
  const std::uint32_t computed = r.crc();
  if (version >= 3) {
    r.expect("crc32");
    const std::string stored = r.next("crc32 value");
    errno = 0;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(stored.c_str(), &end, 16);
    if (end != stored.c_str() + stored.size() || stored.size() != 8 ||
        errno == ERANGE) {
      r.fail("malformed crc32 value '" + stored + "'");
    }
    if (static_cast<std::uint32_t>(parsed) != computed) {
      PROX_OBS_COUNT("characterize.serialize.crc_mismatches", 1);
      r.fail("crc32 mismatch: file is corrupt or was hand-edited");
    }
  }
  return g;
}

CharacterizedGate loadGateModelFile(const std::string& path) {
  const std::string text = support::readFileBounded(path, kMaxModelBytes, kSite);
  std::istringstream in(text);
  return loadGateModel(in);
}

}  // namespace prox::characterize
