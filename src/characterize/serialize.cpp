#include "characterize/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace prox::characterize {

namespace {

constexpr const char* kMagic = "proxdelay-model";
constexpr int kVersion = 1;

char edgeChar(wave::Edge e) { return e == wave::Edge::Rising ? 'R' : 'F'; }

wave::Edge parseEdge(const std::string& s) {
  if (s == "R") return wave::Edge::Rising;
  if (s == "F") return wave::Edge::Falling;
  throw std::runtime_error("loadGateModel: bad edge tag '" + s + "'");
}

std::string gateTag(cells::GateType t) {
  switch (t) {
    case cells::GateType::Inverter: return "INV";
    case cells::GateType::Nand: return "NAND";
    case cells::GateType::Nor: return "NOR";
    case cells::GateType::Complex: return "COMPLEX";
  }
  return "?";
}

cells::GateType parseGateTag(const std::string& s) {
  if (s == "INV") return cells::GateType::Inverter;
  if (s == "NAND") return cells::GateType::Nand;
  if (s == "NOR") return cells::GateType::Nor;
  if (s == "COMPLEX") return cells::GateType::Complex;
  throw std::runtime_error("loadGateModel: bad gate tag '" + s + "'");
}

void writeMos(std::ostream& os, const char* tag, const spice::MosfetParams& p) {
  os << tag << ' ' << p.kp << ' ' << p.vt0 << ' ' << p.lambda << ' ' << p.gamma
     << ' ' << p.phi << ' ' << p.w << ' ' << p.l << ' '
     << (p.equation == spice::MosEquation::AlphaPower ? 14 : 1) << ' '
     << p.alpha << ' ' << p.pc << ' ' << p.pv << '\n';
}

void readMos(std::istream& is, const char* tag, bool nmos,
             spice::MosfetParams* p) {
  std::string t;
  is >> t;
  if (t != tag) throw std::runtime_error("loadGateModel: expected " +
                                         std::string(tag) + ", got " + t);
  p->nmos = nmos;
  int level = 1;
  is >> p->kp >> p->vt0 >> p->lambda >> p->gamma >> p->phi >> p->w >> p->l >>
      level >> p->alpha >> p->pc >> p->pv;
  p->equation = level == 14 ? spice::MosEquation::AlphaPower
                            : spice::MosEquation::Level1;
}

void writeVector(std::ostream& os, const std::vector<double>& v) {
  os << v.size();
  for (double x : v) os << ' ' << x;
  os << '\n';
}

std::vector<double> readVector(std::istream& is) {
  std::size_t n = 0;
  is >> n;
  if (!is || n > (1u << 24)) {
    throw std::runtime_error("loadGateModel: bad vector length");
  }
  std::vector<double> v(n);
  for (double& x : v) is >> x;
  if (!is) throw std::runtime_error("loadGateModel: truncated vector");
  return v;
}

void writeDualTable2(std::ostream& os, const model::DualTable& t) {
  writeVector(os, t.u);
  writeVector(os, t.v);
  writeVector(os, t.w);
  writeVector(os, t.ratio);
}

void writeDualTable(std::ostream& os, const char* tag, int pin, wave::Edge e,
                    const model::DualTable& t) {
  os << tag << ' ' << pin << ' ' << edgeChar(e) << '\n';
  writeDualTable2(os, t);
}

model::DualTable readDualTable(std::istream& is) {
  model::DualTable t;
  t.u = readVector(is);
  t.v = readVector(is);
  t.w = readVector(is);
  t.ratio = readVector(is);
  if (t.ratio.size() != t.u.size() * t.v.size() * t.w.size()) {
    throw std::runtime_error("loadGateModel: dual table size mismatch");
  }
  return t;
}

}  // namespace

void saveGateModel(const CharacterizedGate& g, std::ostream& os) {
  os << std::setprecision(17);
  const cells::CellSpec& s = g.gate.spec;
  os << kMagic << ' ' << kVersion << '\n';
  os << "gate " << gateTag(s.type) << ' ' << s.fanin << '\n';
  if (g.gate.complex) {
    os << "pullnet " << g.gate.complex->pulldown.toString() << '\n';
  }
  os << "sizing " << s.wn << ' ' << s.wp << ' ' << s.loadCap << '\n';
  os << "vdd " << s.tech.vdd << '\n';
  writeMos(os, "nmos", s.tech.nmos);
  writeMos(os, "pmos", s.tech.pmos);
  os << "caps " << s.tech.coxPerArea << ' ' << s.tech.overlapCapPerWidth << ' '
     << s.tech.junctionCapPerWidth << '\n';
  os << "thresholds " << g.gate.thresholds.vil << ' ' << g.gate.thresholds.vih
     << '\n';

  const int n = g.pinCount();
  for (int pin = 0; pin < n; ++pin) {
    for (wave::Edge e : {wave::Edge::Rising, wave::Edge::Falling}) {
      const model::SingleInputModel& m = g.singles->at(pin, e);
      os << "single " << pin << ' ' << edgeChar(e) << ' ' << m.loadCap() << ' '
         << m.strengthK() << ' ' << m.vdd() << ' ' << m.table().size() << '\n';
      for (const auto& row : m.table()) {
        os << row.tau << ' ' << row.delay << ' ' << row.transition << '\n';
      }
    }
  }
  for (int pin = 0; pin < n; ++pin) {
    for (wave::Edge e : {wave::Edge::Rising, wave::Edge::Falling}) {
      writeDualTable(os, "dualdelay", pin, e, g.dual->delayTable(pin, e));
      writeDualTable(os, "dualtrans", pin, e, g.dual->transitionTable(pin, e));
    }
  }
  for (const auto& [ref, other, e] : g.dual->pairKeys()) {
    os << "pairdelay " << ref << ' ' << other << ' ' << edgeChar(e) << '\n';
    writeDualTable2(os, g.dual->pairDelayTable(ref, other, e));
    os << "pairtrans " << ref << ' ' << other << ' ' << edgeChar(e) << '\n';
    writeDualTable2(os, g.dual->pairTransitionTable(ref, other, e));
  }
  os << "correction\n";
  writeVector(os, g.correction.delayErrorRising);
  writeVector(os, g.correction.delayErrorFalling);
  writeVector(os, g.correction.transitionErrorRising);
  writeVector(os, g.correction.transitionErrorFalling);
  os << "end\n";
}

void saveGateModel(const CharacterizedGate& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("saveGateModel: cannot open " + path);
  saveGateModel(g, f);
}

CharacterizedGate loadGateModel(std::istream& is) {
  std::string tag;
  int version = 0;
  is >> tag >> version;
  if (tag != kMagic || version != kVersion) {
    throw std::runtime_error("loadGateModel: bad header");
  }

  CharacterizedGate g;
  cells::CellSpec& s = g.gate.spec;

  std::string word;
  is >> word;
  if (word != "gate") throw std::runtime_error("loadGateModel: expected gate");
  is >> word >> s.fanin;
  s.type = parseGateTag(word);

  std::string pullExprText;
  if (s.type == cells::GateType::Complex) {
    is >> word;
    if (word != "pullnet") {
      throw std::runtime_error("loadGateModel: expected pullnet");
    }
    is >> pullExprText;
  }

  is >> word;
  if (word != "sizing") throw std::runtime_error("loadGateModel: expected sizing");
  is >> s.wn >> s.wp >> s.loadCap;

  is >> word;
  if (word != "vdd") throw std::runtime_error("loadGateModel: expected vdd");
  is >> s.tech.vdd;
  readMos(is, "nmos", true, &s.tech.nmos);
  readMos(is, "pmos", false, &s.tech.pmos);
  is >> word;
  if (word != "caps") throw std::runtime_error("loadGateModel: expected caps");
  is >> s.tech.coxPerArea >> s.tech.overlapCapPerWidth >>
      s.tech.junctionCapPerWidth;

  is >> word;
  if (word != "thresholds") {
    throw std::runtime_error("loadGateModel: expected thresholds");
  }
  is >> g.gate.thresholds.vil >> g.gate.thresholds.vih;

  if (s.type == cells::GateType::Complex) {
    cells::ComplexCellSpec cs;
    cs.pulldown = cells::PullExpr::parse(pullExprText);
    cs.tech = s.tech;
    cs.wn = s.wn;
    cs.wp = s.wp;
    cs.loadCap = s.loadCap;
    if (cs.pinCount() != s.fanin) {
      throw std::runtime_error("loadGateModel: pullnet pin count mismatch");
    }
    g.gate.complex = cs;
  }

  g.singles = std::make_unique<model::SingleInputModelSet>();
  const int n = g.pinCount();
  for (int i = 0; i < n * 2; ++i) {
    int pin = 0;
    std::string edgeTag;
    double loadCap = 0.0;
    double k = 0.0;
    double vdd = 0.0;
    std::size_t rows = 0;
    is >> word;
    if (word != "single") throw std::runtime_error("loadGateModel: expected single");
    is >> pin >> edgeTag >> loadCap >> k >> vdd >> rows;
    std::vector<model::SingleInputModel::Sample> table(rows);
    for (auto& row : table) is >> row.tau >> row.delay >> row.transition;
    if (!is) throw std::runtime_error("loadGateModel: truncated single table");
    g.singles->set(model::SingleInputModel(pin, parseEdge(edgeTag),
                                           std::move(table), loadCap, k, vdd));
  }

  g.dual = std::make_unique<model::TabulatedDualInputModel>(*g.singles);
  // Tag-driven section: per-reference tables, optional pair tables, then the
  // correction block terminates the loop.
  while (true) {
    is >> word;
    if (!is) throw std::runtime_error("loadGateModel: truncated dual section");
    if (word == "correction") break;
    if (word == "dualdelay" || word == "dualtrans") {
      int pin = 0;
      std::string edgeTag;
      is >> pin >> edgeTag;
      if (word == "dualdelay") {
        g.dual->setDelayTable(pin, parseEdge(edgeTag), readDualTable(is));
      } else {
        g.dual->setTransitionTable(pin, parseEdge(edgeTag), readDualTable(is));
      }
    } else if (word == "pairdelay" || word == "pairtrans") {
      int ref = 0;
      int other = 0;
      std::string edgeTag;
      is >> ref >> other >> edgeTag;
      if (word == "pairdelay") {
        g.dual->setPairDelayTable(ref, other, parseEdge(edgeTag),
                                  readDualTable(is));
      } else {
        g.dual->setPairTransitionTable(ref, other, parseEdge(edgeTag),
                                       readDualTable(is));
      }
    } else {
      throw std::runtime_error("loadGateModel: unexpected section '" + word +
                               "'");
    }
  }
  g.correction.delayErrorRising = readVector(is);
  g.correction.delayErrorFalling = readVector(is);
  g.correction.transitionErrorRising = readVector(is);
  g.correction.transitionErrorFalling = readVector(is);

  is >> word;
  if (word != "end") throw std::runtime_error("loadGateModel: expected end");
  return g;
}

CharacterizedGate loadGateModelFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("loadGateModel: cannot open " + path);
  return loadGateModel(f);
}

}  // namespace prox::characterize
