#include "simd/dispatch.hpp"
#include "simd/trilerp.hpp"

namespace prox::simd {

namespace {
inline double lerp(double a, double b, double f) { return a + f * (b - a); }
}  // namespace

void trilerpScalar(const TrilerpBatch& b) {
  for (std::size_t i = 0; i < b.n; ++i) {
    const double v000 = b.base[b.corner[0][i]];
    const double v100 = b.base[b.corner[1][i]];
    const double v001 = b.base[b.corner[2][i]];
    const double v101 = b.base[b.corner[3][i]];
    const double v010 = b.base[b.corner[4][i]];
    const double v110 = b.base[b.corner[5][i]];
    const double v011 = b.base[b.corner[6][i]];
    const double v111 = b.base[b.corner[7][i]];
    const double fu = b.fu[i];
    const double fv = b.fv[i];
    const double fw = b.fw[i];
    const double c00 = lerp(v000, v100, fu);
    const double c01 = lerp(v001, v101, fu);
    const double c10 = lerp(v010, v110, fu);
    const double c11 = lerp(v011, v111, fu);
    const double c0 = lerp(c00, c10, fv);
    const double c1 = lerp(c01, c11, fv);
    b.out[i] = lerp(c0, c1, fw);
  }
}

void trilerp(const TrilerpBatch& b) {
  switch (activePath()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Path::Avx2:
      trilerpAvx2(b);
      return;
#endif
#if defined(__aarch64__)
    case Path::Neon:
      trilerpNeon(b);
      return;
#endif
    default:
      break;
  }
  trilerpScalar(b);
}

void divideScalar(const double* num, const double* den, double* out,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = num[i] / den[i];
}

void divide(const double* num, const double* den, double* out,
            std::size_t n) {
  switch (activePath()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Path::Avx2:
      divideAvx2(num, den, out, n);
      return;
#endif
#if defined(__aarch64__)
    case Path::Neon:
      divideNeon(num, den, out, n);
      return;
#endif
    default:
      break;
  }
  divideScalar(num, den, out, n);
}

void interpPairScalar(const InterpPairBatch& b) {
  for (std::size_t i = 0; i < b.n; ++i) {
    const double f = b.num[i] / b.den[i];
    b.d1[i] = lerp(b.aD[i], b.bD[i], f);
    b.t1[i] = lerp(b.aT[i], b.bT[i], f);
  }
}

void interpPair(const InterpPairBatch& b) {
  switch (activePath()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Path::Avx2:
      interpPairAvx2(b);
      return;
#endif
#if defined(__aarch64__)
    case Path::Neon:
      interpPairNeon(b);
      return;
#endif
    default:
      break;
  }
  interpPairScalar(b);
}

void axisLocateScalar(const AxisLocateBatch& b) {
  const double* g = b.grid;
  const std::uint32_t n = b.n;
  const double g0 = g[0];
  const double gl = g[n - 1];
  for (std::size_t i = 0; i < b.count; ++i) {
    const double x = b.x[i];
    const double m1 = g0 - x;
    const double m2 = x - gl;
    double m = m1 > m2 ? m1 : m2;
    m = m > 0.0 ? m : 0.0;
    b.over[i] = m / b.denom;
    const bool low = x <= g0;
    const bool high = x >= gl;
    std::uint32_t cnt = 0;
    for (std::uint32_t k = 1; k + 1 < n; ++k) cnt += g[k] < x ? 1u : 0u;
    const std::uint32_t ia = low ? 0u : (high ? n - 2 : cnt);
    const double num = low ? 0.0 : (high ? 1.0 : x - g[ia]);
    const double den = (low || high) ? 1.0 : g[ia + 1] - g[ia];
    b.f[i] = num / den;
    b.idx[i] = ia;
  }
}

void axisLocate(const AxisLocateBatch& b) {
  switch (activePath()) {
#if defined(__x86_64__) || defined(_M_X64)
    case Path::Avx2:
      axisLocateAvx2(b);
      return;
#endif
#if defined(__aarch64__)
    case Path::Neon:
      axisLocateNeon(b);
      return;
#endif
    default:
      break;
  }
  axisLocateScalar(b);
}

}  // namespace prox::simd
