#pragma once
// Batched trilinear blending over a shared value arena.
//
// The caller (TabulatedDualInputModel::evaluateMany) has already done the
// scalar per-query work -- axis location, fraction computation, clamping --
// and hands this kernel pure data-parallel arithmetic: for each lane i,
// gather the 8 cell-corner values and blend them with the precomputed
// fractions in the exact operation order of DualTable::interpolate():
//
//   lerp(a, b, f) = a + f * (b - a)
//   c00 = lerp(v000, v100, fu);  c01 = lerp(v001, v101, fu)
//   c10 = lerp(v010, v110, fu);  c11 = lerp(v011, v111, fu)
//   c0  = lerp(c00, c10, fv);    c1  = lerp(c01, c11, fv)
//   out = lerp(c0, c1, fw)
//
// Bit-identity contract: every implementation performs these 7 lerps as
// individual IEEE double multiply/subtract/add operations in this order.
// The AVX2 translation unit is therefore compiled with FMA contraction
// disabled (-mno-fma -ffp-contract=off); fusing any mul+add would change
// the last ulp and break the pinned STA arrival checksums.

#include <cstddef>
#include <cstdint>

namespace prox::simd {

/// One batch of trilinear blends.  Corner indices are 32-bit offsets into
/// the shared @p base arena, stored corner-major (corner[c][i] is corner c
/// of lane i) so each corner loads contiguously into a vector register.
/// Corner order: c000 c100 c001 c101 c010 c110 c011 c111 (u fastest).
struct TrilerpBatch {
  const double* base = nullptr;
  const std::uint32_t* corner[8] = {};
  const double* fu = nullptr;
  const double* fv = nullptr;
  const double* fw = nullptr;
  double* out = nullptr;
  std::size_t n = 0;
};

/// Portable fallback; the reference for bit-identity.
void trilerpScalar(const TrilerpBatch& b);

#if defined(__x86_64__) || defined(_M_X64)
/// AVX2 kernel (4 lanes per vector, vgatherdpd corner loads).  Only call
/// when the CPU supports AVX2.
void trilerpAvx2(const TrilerpBatch& b);
#endif

#if defined(__aarch64__)
/// NEON kernel (2 lanes per vector).
void trilerpNeon(const TrilerpBatch& b);
#endif

/// Runs the batch on the dispatch shim's active path.
void trilerp(const TrilerpBatch& b);

/// Elementwise out[i] = num[i] / den[i].  IEEE double division is correctly
/// rounded on every path, so the vector and scalar results are bit-identical
/// by construction -- this is what lets evaluateMany() stage its (serially
/// dependent, ~15-20 cycle) divisions into data-parallel passes.  In-place
/// operation (out == num or out == den) is allowed.
void divide(const double* num, const double* den, double* out, std::size_t n);
void divideScalar(const double* num, const double* den, double* out,
                  std::size_t n);
#if defined(__x86_64__) || defined(_M_X64)
void divideAvx2(const double* num, const double* den, double* out,
                std::size_t n);
#endif
#if defined(__aarch64__)
void divideNeon(const double* num, const double* den, double* out,
                std::size_t n);
#endif

/// Batched single-input table interpolation: for each lane,
///   f  = num / den
///   d1 = aD + f * (bD - aD)
///   t1 = aT + f * (bT - aT)
/// -- the exact operation sequence of SingleInputModel::delay()/transition()
/// once the bracketing segment is known (num = tau - a.tau, den = b.tau -
/// a.tau, endpoints from the segment).  Division is correctly rounded and
/// the lerps stay separate mul/sub/add, so every path is bit-identical to
/// the scalar member functions.
struct InterpPairBatch {
  const double* num = nullptr;
  const double* den = nullptr;
  const double* aD = nullptr;
  const double* bD = nullptr;
  const double* aT = nullptr;
  const double* bT = nullptr;
  double* d1 = nullptr;
  double* t1 = nullptr;
  std::size_t n = 0;
};
void interpPair(const InterpPairBatch& b);
void interpPairScalar(const InterpPairBatch& b);
#if defined(__x86_64__) || defined(_M_X64)
void interpPairAvx2(const InterpPairBatch& b);
#endif
#if defined(__aarch64__)
void interpPairNeon(const InterpPairBatch& b);
#endif

/// Batched axis location against one shared grid (lanes grouped by table):
/// for each lane with coordinate x,
///   over = max(g[0] - x, x - g[n-1], 0) / denom          (0 when in-grid)
///   low  = x <= g[0];  high = x >= g[n-1]
///   hi   = 1 + |{k in [1, n-2] : g[k] < x}|              (bracketing scan)
///   idx  = low ? 0 : high ? n-2 : hi-1
///   f    = (low ? 0 : high ? 1 : x - g[idx]) /
///          (low || high ? 1 : g[idx+1] - g[idx])
/// This is locate()/overshoot() of DualTable::interpolate() with the
/// fraction's edge cases staged as the exact quotients 0/1 and 1/1, the
/// bracketing scan replaced by the equivalent sorted-prefix count, and the
/// overshoot's early return replaced by max-with-0 (identical value for
/// every finite x).  All selects use strict (a > b ? a : b) semantics and
/// the divisions are correctly rounded, so scalar and vector paths agree
/// bit for bit.  Requires n >= 2 (single-point grids are the caller's
/// trivial special case).
struct AxisLocateBatch {
  const double* grid = nullptr;
  std::uint32_t n = 0;     ///< grid size, >= 2
  double denom = 1.0;      ///< precomputed overshoot normalizer
  const double* x = nullptr;
  double* f = nullptr;     ///< out: interpolation fraction
  double* over = nullptr;  ///< out: relative overshoot
  std::uint32_t* idx = nullptr;  ///< out: cell index, <= n-2
  std::size_t count = 0;
};
void axisLocate(const AxisLocateBatch& b);
void axisLocateScalar(const AxisLocateBatch& b);
#if defined(__x86_64__) || defined(_M_X64)
void axisLocateAvx2(const AxisLocateBatch& b);
#endif
#if defined(__aarch64__)
void axisLocateNeon(const AxisLocateBatch& b);
#endif

}  // namespace prox::simd
