// AVX2 trilinear kernel.  This translation unit is compiled with
// -mavx2 -mno-fma -ffp-contract=off (see src/CMakeLists.txt): the lerps
// below must stay separate vmulpd/vsubpd/vaddpd operations so the results
// match the scalar fallback bit for bit.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "simd/trilerp.hpp"

namespace prox::simd {

namespace {

inline __m256d lerp4(__m256d a, __m256d b, __m256d f) {
  return _mm256_add_pd(a, _mm256_mul_pd(f, _mm256_sub_pd(b, a)));
}

/// All-lanes-enabled gather mask.  The masked gather forms take an explicit
/// source vector; the plain ones pass _mm256_undefined_pd() through the
/// builtin, which GCC 12 flags with -Wmaybe-uninitialized.
inline __m256d gatherMask() {
  const __m256d z = _mm256_setzero_pd();
  return _mm256_cmp_pd(z, z, _CMP_EQ_OQ);
}

inline __m256d gather4(const double* base, const std::uint32_t* idx,
                       std::size_t i) {
  const __m128i v =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, v, gatherMask(),
                                  8);
}

}  // namespace

void trilerpAvx2(const TrilerpBatch& b) {
  std::size_t i = 0;
  for (; i + 4 <= b.n; i += 4) {
    const __m256d v000 = gather4(b.base, b.corner[0], i);
    const __m256d v100 = gather4(b.base, b.corner[1], i);
    const __m256d v001 = gather4(b.base, b.corner[2], i);
    const __m256d v101 = gather4(b.base, b.corner[3], i);
    const __m256d v010 = gather4(b.base, b.corner[4], i);
    const __m256d v110 = gather4(b.base, b.corner[5], i);
    const __m256d v011 = gather4(b.base, b.corner[6], i);
    const __m256d v111 = gather4(b.base, b.corner[7], i);
    const __m256d fu = _mm256_loadu_pd(b.fu + i);
    const __m256d fv = _mm256_loadu_pd(b.fv + i);
    const __m256d fw = _mm256_loadu_pd(b.fw + i);
    const __m256d c00 = lerp4(v000, v100, fu);
    const __m256d c01 = lerp4(v001, v101, fu);
    const __m256d c10 = lerp4(v010, v110, fu);
    const __m256d c11 = lerp4(v011, v111, fu);
    const __m256d c0 = lerp4(c00, c10, fv);
    const __m256d c1 = lerp4(c01, c11, fv);
    _mm256_storeu_pd(b.out + i, lerp4(c0, c1, fw));
  }
  if (i < b.n) {
    TrilerpBatch tail = b;
    for (int c = 0; c < 8; ++c) tail.corner[c] = b.corner[c] + i;
    tail.fu = b.fu + i;
    tail.fv = b.fv + i;
    tail.fw = b.fw + i;
    tail.out = b.out + i;
    tail.n = b.n - i;
    trilerpScalar(tail);
  }
}

void divideAvx2(const double* num, const double* den, double* out,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_div_pd(_mm256_loadu_pd(num + i), _mm256_loadu_pd(den + i)));
  }
  for (; i < n; ++i) out[i] = num[i] / den[i];
}

void interpPairAvx2(const InterpPairBatch& b) {
  std::size_t i = 0;
  for (; i + 4 <= b.n; i += 4) {
    const __m256d f = _mm256_div_pd(_mm256_loadu_pd(b.num + i),
                                    _mm256_loadu_pd(b.den + i));
    _mm256_storeu_pd(
        b.d1 + i,
        lerp4(_mm256_loadu_pd(b.aD + i), _mm256_loadu_pd(b.bD + i), f));
    _mm256_storeu_pd(
        b.t1 + i,
        lerp4(_mm256_loadu_pd(b.aT + i), _mm256_loadu_pd(b.bT + i), f));
  }
  if (i < b.n) {
    InterpPairBatch tail = b;
    tail.num = b.num + i;
    tail.den = b.den + i;
    tail.aD = b.aD + i;
    tail.bD = b.bD + i;
    tail.aT = b.aT + i;
    tail.bT = b.bT + i;
    tail.d1 = b.d1 + i;
    tail.t1 = b.t1 + i;
    tail.n = b.n - i;
    interpPairScalar(tail);
  }
}

void axisLocateAvx2(const AxisLocateBatch& b) {
  const double* g = b.grid;
  const std::uint32_t n = b.n;
  const __m256d g0 = _mm256_set1_pd(g[0]);
  const __m256d gl = _mm256_set1_pd(g[n - 1]);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d denom = _mm256_set1_pd(b.denom);
  const __m256i iaZero = _mm256_setzero_si256();
  const __m256i iaLast = _mm256_set1_epi64x(static_cast<long long>(n - 2));
  std::size_t i = 0;
  for (; i + 4 <= b.count; i += 4) {
    const __m256d x = _mm256_loadu_pd(b.x + i);
    // over = max(g0 - x, x - gl, 0) / denom with (a > b ? a : b) selects.
    const __m256d m1 = _mm256_sub_pd(g0, x);
    const __m256d m2 = _mm256_sub_pd(x, gl);
    __m256d m = _mm256_blendv_pd(m2, m1, _mm256_cmp_pd(m1, m2, _CMP_GT_OQ));
    m = _mm256_blendv_pd(zero, m, _mm256_cmp_pd(m, zero, _CMP_GT_OQ));
    _mm256_storeu_pd(b.over + i, _mm256_div_pd(m, denom));
    const __m256d lowM = _mm256_cmp_pd(x, g0, _CMP_LE_OQ);
    const __m256d highM = _mm256_cmp_pd(x, gl, _CMP_GE_OQ);
    // cnt = |{k in [1, n-2] : g[k] < x}|; each true compare is all-ones
    // (-1), so subtracting the mask accumulates the count.
    __m256i cnt = _mm256_setzero_si256();
    for (std::uint32_t k = 1; k + 1 < n; ++k) {
      const __m256d lt =
          _mm256_cmp_pd(_mm256_set1_pd(g[k]), x, _CMP_LT_OQ);
      cnt = _mm256_sub_epi64(cnt, _mm256_castpd_si256(lt));
    }
    // ia = low ? 0 : high ? n-2 : cnt  (low wins, so it blends last).
    __m256i ia = _mm256_blendv_epi8(cnt, iaLast, _mm256_castpd_si256(highM));
    ia = _mm256_blendv_epi8(ia, iaZero, _mm256_castpd_si256(lowM));
    const __m256d gA =
        _mm256_mask_i64gather_pd(_mm256_setzero_pd(), g, ia, gatherMask(), 8);
    const __m256d gB = _mm256_mask_i64gather_pd(_mm256_setzero_pd(), g + 1,
                                                ia, gatherMask(), 8);
    __m256d num = _mm256_sub_pd(x, gA);
    num = _mm256_blendv_pd(num, one, highM);
    num = _mm256_blendv_pd(num, zero, lowM);
    const __m256d den = _mm256_blendv_pd(_mm256_sub_pd(gB, gA), one,
                                         _mm256_or_pd(lowM, highM));
    _mm256_storeu_pd(b.f + i, _mm256_div_pd(num, den));
    // Narrow the four int64 indices to uint32 (values fit: <= n-2).
    const __m128i iaLo = _mm256_castsi256_si128(ia);
    const __m128i iaHi = _mm256_extracti128_si256(ia, 1);
    const __m128i idx32 = _mm_castps_si128(
        _mm_shuffle_ps(_mm_castsi128_ps(iaLo), _mm_castsi128_ps(iaHi),
                       _MM_SHUFFLE(2, 0, 2, 0)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b.idx + i), idx32);
  }
  if (i < b.count) {
    AxisLocateBatch tail = b;
    tail.x = b.x + i;
    tail.f = b.f + i;
    tail.over = b.over + i;
    tail.idx = b.idx + i;
    tail.count = b.count - i;
    axisLocateScalar(tail);
  }
}

}  // namespace prox::simd

#endif  // x86-64
