#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace prox::simd {

namespace {

Path detect() {
  if (const char* env = std::getenv("PROX_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return Path::Scalar;
    }
  }
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Path::Avx2;
#endif
  return Path::Scalar;
#elif defined(__aarch64__)
  return Path::Neon;
#else
  return Path::Scalar;
#endif
}

// -1 = unresolved; otherwise a Path value.  Plain relaxed atomics: the
// resolution is idempotent, so a racing first call at worst detects twice.
std::atomic<int> gPath{-1};

}  // namespace

Path activePath() {
  int p = gPath.load(std::memory_order_relaxed);
  if (p < 0) {
    p = static_cast<int>(detect());
    gPath.store(p, std::memory_order_relaxed);
  }
  return static_cast<Path>(p);
}

void forcePath(Path p) {
  gPath.store(static_cast<int>(p), std::memory_order_relaxed);
}

void resetPath() { gPath.store(-1, std::memory_order_relaxed); }

const char* pathName(Path p) {
  switch (p) {
    case Path::Avx2:
      return "avx2";
    case Path::Neon:
      return "neon";
    case Path::Scalar:
      break;
  }
  return "scalar";
}

}  // namespace prox::simd
