// NEON trilinear kernel (AArch64).  NEON has no gather, so corner values are
// loaded lane-by-lane; the blending itself runs two lanes per vector with
// separate mul/sub/add operations (no vfma) to stay bit-identical to the
// scalar fallback.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "simd/trilerp.hpp"

namespace prox::simd {

namespace {

inline float64x2_t lerp2(float64x2_t a, float64x2_t b, float64x2_t f) {
  return vaddq_f64(a, vmulq_f64(f, vsubq_f64(b, a)));
}

inline float64x2_t gather2(const double* base, const std::uint32_t* idx,
                           std::size_t i) {
  float64x2_t v = vdupq_n_f64(base[idx[i]]);
  return vsetq_lane_f64(base[idx[i + 1]], v, 1);
}

}  // namespace

void trilerpNeon(const TrilerpBatch& b) {
  std::size_t i = 0;
  for (; i + 2 <= b.n; i += 2) {
    const float64x2_t v000 = gather2(b.base, b.corner[0], i);
    const float64x2_t v100 = gather2(b.base, b.corner[1], i);
    const float64x2_t v001 = gather2(b.base, b.corner[2], i);
    const float64x2_t v101 = gather2(b.base, b.corner[3], i);
    const float64x2_t v010 = gather2(b.base, b.corner[4], i);
    const float64x2_t v110 = gather2(b.base, b.corner[5], i);
    const float64x2_t v011 = gather2(b.base, b.corner[6], i);
    const float64x2_t v111 = gather2(b.base, b.corner[7], i);
    const float64x2_t fu = vld1q_f64(b.fu + i);
    const float64x2_t fv = vld1q_f64(b.fv + i);
    const float64x2_t fw = vld1q_f64(b.fw + i);
    const float64x2_t c00 = lerp2(v000, v100, fu);
    const float64x2_t c01 = lerp2(v001, v101, fu);
    const float64x2_t c10 = lerp2(v010, v110, fu);
    const float64x2_t c11 = lerp2(v011, v111, fu);
    const float64x2_t c0 = lerp2(c00, c10, fv);
    const float64x2_t c1 = lerp2(c01, c11, fv);
    vst1q_f64(b.out + i, lerp2(c0, c1, fw));
  }
  if (i < b.n) {
    TrilerpBatch tail = b;
    for (int c = 0; c < 8; ++c) tail.corner[c] = b.corner[c] + i;
    tail.fu = b.fu + i;
    tail.fv = b.fv + i;
    tail.fw = b.fw + i;
    tail.out = b.out + i;
    tail.n = b.n - i;
    trilerpScalar(tail);
  }
}

void divideNeon(const double* num, const double* den, double* out,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vdivq_f64(vld1q_f64(num + i), vld1q_f64(den + i)));
  }
  for (; i < n; ++i) out[i] = num[i] / den[i];
}

void interpPairNeon(const InterpPairBatch& b) {
  std::size_t i = 0;
  for (; i + 2 <= b.n; i += 2) {
    const float64x2_t f =
        vdivq_f64(vld1q_f64(b.num + i), vld1q_f64(b.den + i));
    vst1q_f64(b.d1 + i,
              lerp2(vld1q_f64(b.aD + i), vld1q_f64(b.bD + i), f));
    vst1q_f64(b.t1 + i,
              lerp2(vld1q_f64(b.aT + i), vld1q_f64(b.bT + i), f));
  }
  if (i < b.n) {
    InterpPairBatch tail = b;
    tail.num = b.num + i;
    tail.den = b.den + i;
    tail.aD = b.aD + i;
    tail.bD = b.bD + i;
    tail.aT = b.aT + i;
    tail.bT = b.bT + i;
    tail.d1 = b.d1 + i;
    tail.t1 = b.t1 + i;
    tail.n = b.n - i;
    interpPairScalar(tail);
  }
}

void axisLocateNeon(const AxisLocateBatch& b) {
  const double* g = b.grid;
  const std::uint32_t n = b.n;
  const float64x2_t g0 = vdupq_n_f64(g[0]);
  const float64x2_t gl = vdupq_n_f64(g[n - 1]);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t denom = vdupq_n_f64(b.denom);
  const uint64x2_t iaLast = vdupq_n_u64(n - 2);
  std::size_t i = 0;
  for (; i + 2 <= b.count; i += 2) {
    const float64x2_t x = vld1q_f64(b.x + i);
    // over = max(g0 - x, x - gl, 0) / denom with (a > b ? a : b) selects.
    const float64x2_t m1 = vsubq_f64(g0, x);
    const float64x2_t m2 = vsubq_f64(x, gl);
    float64x2_t m = vbslq_f64(vcgtq_f64(m1, m2), m1, m2);
    m = vbslq_f64(vcgtq_f64(m, zero), m, zero);
    vst1q_f64(b.over + i, vdivq_f64(m, denom));
    const uint64x2_t lowM = vcleq_f64(x, g0);
    const uint64x2_t highM = vcgeq_f64(x, gl);
    // cnt = |{k in [1, n-2] : g[k] < x}|; true compares are all-ones (-1).
    uint64x2_t cnt = vdupq_n_u64(0);
    for (std::uint32_t k = 1; k + 1 < n; ++k) {
      cnt = vsubq_u64(cnt, vcltq_f64(vdupq_n_f64(g[k]), x));
    }
    // ia = low ? 0 : high ? n-2 : cnt  (low wins, so it selects last).
    uint64x2_t ia = vbslq_u64(highM, iaLast, cnt);
    ia = vbslq_u64(lowM, vdupq_n_u64(0), ia);
    const std::uint64_t ia0 = vgetq_lane_u64(ia, 0);
    const std::uint64_t ia1 = vgetq_lane_u64(ia, 1);
    float64x2_t gA = vdupq_n_f64(g[ia0]);
    gA = vsetq_lane_f64(g[ia1], gA, 1);
    float64x2_t gB = vdupq_n_f64(g[ia0 + 1]);
    gB = vsetq_lane_f64(g[ia1 + 1], gB, 1);
    float64x2_t num = vsubq_f64(x, gA);
    num = vbslq_f64(highM, one, num);
    num = vbslq_f64(lowM, zero, num);
    const float64x2_t den =
        vbslq_f64(vorrq_u64(lowM, highM), one, vsubq_f64(gB, gA));
    vst1q_f64(b.f + i, vdivq_f64(num, den));
    b.idx[i] = static_cast<std::uint32_t>(ia0);
    b.idx[i + 1] = static_cast<std::uint32_t>(ia1);
  }
  if (i < b.count) {
    AxisLocateBatch tail = b;
    tail.x = b.x + i;
    tail.f = b.f + i;
    tail.over = b.over + i;
    tail.idx = b.idx + i;
    tail.count = b.count - i;
    axisLocateScalar(tail);
  }
}

}  // namespace prox::simd

#endif  // AArch64
