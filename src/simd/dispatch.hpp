#pragma once
// Runtime SIMD dispatch for the batched table-evaluation kernels.
//
// The resolution order is fixed and cheap (one atomic load on the hot path):
//   1. the PROX_SIMD environment variable -- "off", "scalar" or "0" forces
//      the scalar fallback (the bit-identity referee in CI runs the whole
//      test suite once per path);
//   2. a test override installed via forcePath();
//   3. CPU capability: AVX2 on x86-64 (detected with cpuid), NEON on
//      AArch64, scalar everywhere else.
//
// Every kernel behind this shim is bit-identical to its scalar fallback by
// contract (DESIGN.md §11): the dispatch decision may change how fast an
// answer arrives, never which bits it contains.

namespace prox::simd {

enum class Path {
  Scalar,  ///< portable fallback, always available
  Avx2,    ///< x86-64 AVX2 (4 doubles per vector, gathers)
  Neon,    ///< AArch64 NEON (2 doubles per vector)
};

/// The path the kernels currently dispatch to.  Resolved once (environment,
/// then CPU detection) and cached; forcePath() overrides the cache.
Path activePath();

/// Test hook: pin the dispatch to @p p regardless of environment or CPU.
/// Forcing a path the CPU cannot execute is the caller's own foot-gun; tests
/// only ever force Scalar.
void forcePath(Path p);

/// Drops any forcePath() override and re-resolves from environment + CPU.
void resetPath();

/// Stable lower-case name for reports ("scalar", "avx2", "neon").
const char* pathName(Path p);

}  // namespace prox::simd
