#pragma once
// The dual-input proximity macromodel (Section 3): three-argument functions
//
//   Delta^(2)/Delta^(1) = D^(2)( tau_i/Delta^(1), tau_j/Delta^(1), s_ij/Delta^(1) )   (3.11)
//   tau^(2)/tau^(1)     = T^(2)( tau_i/tau^(1),   tau_j/tau^(1),   s_ij/tau^(1) )     (3.12)
//
// where i is the *dominant* (reference) input.  Two interchangeable
// implementations:
//   * OracleDualInputModel -- answers every query by running the
//     transistor-level simulator on the reduced two-input configuration.
//     This is exactly the paper's Section 5 methodology ("we used HSPICE as
//     the macromodel for processing the dual-input case").
//   * TabulatedDualInputModel -- a characterized 3-D table per reference pin
//     with trilinear interpolation; the deployable library model whose
//     storage cost is the subject of Fig 4-2.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "model/dual_memo.hpp"
#include "model/single_input.hpp"
#include "support/diagnostic.hpp"

namespace prox::model {

/// Which of the two macromodel quantities a batched query asks for.
enum class DualKind : std::uint8_t {
  Delay,       ///< Delta^(2)/Delta^(1)
  Transition,  ///< tau^(2)/tau^(1)
};

/// A dual-input query in raw (seconds) units.  Both inputs move in the same
/// direction @p edge; @p sep is measured from the reference input to the
/// other input at the Section 3 reference thresholds.
struct DualQuery {
  int refPin = 0;
  int otherPin = 1;
  wave::Edge edge = wave::Edge::Rising;
  double tauRef = 0.0;
  double tauOther = 0.0;
  double sep = 0.0;
  /// Only consulted by the batched evaluateMany() path; the scalar
  /// delayRatio()/transitionRatio() entry points imply the kind.
  DualKind kind = DualKind::Delay;
};

/// One answer from the batched path.  Where the scalar entry points throw
/// (no table covers the query), the batch marks the lane instead so one bad
/// query cannot poison its whole batch.
struct DualResult {
  enum class Status : std::uint8_t {
    Ok,
    MissingTable,  ///< no single-input model or no dual table for the query
  };
  double value = 1.0;
  /// Relative overshoot outside the table grid (0 for in-grid queries) --
  /// the same quantity the scalar path reports via lastClampDistance().
  double clampDistance = 0.0;
  Status status = Status::Ok;
};

class DualInputModel {
 public:
  virtual ~DualInputModel() = default;

  /// Delta^(2)/Delta^(1) for the query (>= 0; -> 1 as sep leaves the window).
  virtual double delayRatio(const DualQuery& q) const = 0;

  /// tau^(2)/tau^(1) for the query.
  virtual double transitionRatio(const DualQuery& q) const = 0;
};

/// Simulation-backed macromodel with memoization.
class OracleDualInputModel : public DualInputModel {
 public:
  /// @p sim and @p singles must outlive the model.  Uses a private memo.
  OracleDualInputModel(GateSimulator& sim, const SingleInputModelSet& singles);

  /// Same, but memoizes through @p memo (must outlive the model), so
  /// repeated sweeps over the same simulator share one cache.
  OracleDualInputModel(GateSimulator& sim, const SingleInputModelSet& singles,
                       DualMemo* memo);

  double delayRatio(const DualQuery& q) const override;
  double transitionRatio(const DualQuery& q) const override;

 private:
  DualMemo::Pair evaluate(const DualQuery& q) const;

  GateSimulator& sim_;
  const SingleInputModelSet& singles_;
  // The memo is internally synchronized; the referenced simulator is NOT
  // thread-safe, so concurrent callers must still use one oracle (and one
  // simulator) per thread -- as the parallel characterization sweep does.
  mutable DualMemo ownMemo_;
  DualMemo* memo_;
};

/// One characterized 3-D ratio table over normalized coordinates.
struct DualTable {
  std::vector<double> u;  ///< tau_ref / norm grid (ascending)
  std::vector<double> v;  ///< tau_other / norm grid (ascending)
  std::vector<double> w;  ///< sep / norm grid (ascending)
  std::vector<double> ratio;  ///< [iu][iv][iw] flattened u-major

  /// Per-point healed marks: empty when no point needed healing, otherwise
  /// one flag per ratio entry (same flattening).  A healed point's value was
  /// reconstructed by neighbor interpolation after the characterization sweep
  /// failed there even with retries; the mark survives serialization so a
  /// downstream consumer can discount such points.
  std::vector<std::uint8_t> healed;

  double at(std::size_t iu, std::size_t iv, std::size_t iw) const {
    return ratio[(iu * v.size() + iv) * w.size() + iw];
  }
  double& at(std::size_t iu, std::size_t iv, std::size_t iw) {
    return ratio[(iu * v.size() + iv) * w.size() + iw];
  }

  std::size_t index(std::size_t iu, std::size_t iv, std::size_t iw) const {
    return (iu * v.size() + iv) * w.size() + iw;
  }
  bool isHealed(std::size_t iu, std::size_t iv, std::size_t iw) const {
    return !healed.empty() && healed[index(iu, iv, iw)] != 0;
  }
  void markHealed(std::size_t iu, std::size_t iv, std::size_t iw) {
    if (healed.empty()) healed.assign(ratio.size(), 0);
    healed[index(iu, iv, iw)] = 1;
  }
  /// Number of healed points (0 when the sweep completed cleanly).
  std::size_t healedCount() const;

  /// Trilinear interpolation, clamped to the grid boundary.  When
  /// @p clampDistance is non-null it receives how far outside the grid the
  /// query fell, as the largest per-axis overshoot relative to that axis's
  /// span (0 for in-grid queries); STA uses it to decide when a clamped
  /// answer is too extrapolated to trust.
  double interpolate(double uu, double vv, double ww,
                     double* clampDistance = nullptr) const;

  /// Storage footprint in bytes (Fig 4-2 accounting).
  std::size_t bytes() const {
    return sizeof(double) * (u.size() + v.size() + w.size() + ratio.size()) +
           sizeof(std::uint8_t) * healed.size();
  }
};

/// Table-backed macromodel.
///
/// Two granularities, matching the paper's Figure 4-2 options:
///   * per-reference-pin tables ("we need only n such macromodels") -- valid
///     for single-stack gates (NAND/NOR), where every partner behaves alike;
///   * per-(reference, other) *pair* tables (option 2(a), n^2 - n tables) --
///     required for complex gates, where two pins of the same reference can
///     sit in a series branch (slow-down) or a parallel branch (speed-up).
/// Lookup prefers the pair table and falls back to the per-reference one.
///
/// Storage is two-tier.  The DualTable maps remain the authoritative,
/// serialized representation; every set*Table call additionally recompiles a
/// flat structure-of-arrays index -- all grids and value planes packed into
/// one contiguous arena, with per-table axis metadata (dimensions, strides,
/// arena offsets) and dense slot arrays keyed exactly like the maps.  The
/// batched evaluateMany() runs entirely on that arena; the scalar entry
/// points keep the legacy map walk.  Both produce bit-identical values.
class TabulatedDualInputModel : public DualInputModel {
 public:
  explicit TabulatedDualInputModel(const SingleInputModelSet& singles);

  /// Installs the per-reference delay table for (refPin, edge).
  void setDelayTable(int refPin, wave::Edge edge, DualTable table);
  /// Installs the per-reference transition-time table for (refPin, edge).
  void setTransitionTable(int refPin, wave::Edge edge, DualTable table);

  /// Installs pair-specific tables for (refPin, otherPin, edge).
  void setPairDelayTable(int refPin, int otherPin, wave::Edge edge,
                         DualTable table);
  void setPairTransitionTable(int refPin, int otherPin, wave::Edge edge,
                              DualTable table);

  bool hasTables(int refPin, wave::Edge edge) const;
  bool hasPairTables(int refPin, int otherPin, wave::Edge edge) const;
  const DualTable& delayTable(int refPin, wave::Edge edge) const;
  const DualTable& transitionTable(int refPin, wave::Edge edge) const;
  const DualTable& pairDelayTable(int refPin, int otherPin,
                                  wave::Edge edge) const;
  const DualTable& pairTransitionTable(int refPin, int otherPin,
                                       wave::Edge edge) const;

  /// All installed pair-table keys as (refPin, otherPin, edge) tuples.
  std::vector<std::tuple<int, int, wave::Edge>> pairKeys() const;

  /// Lookups whose query fell outside a table grid are answered with the
  /// clamped boundary value instead of throwing; these running totals let a
  /// caller (STA's degraded-arc logic, tests) see how often and how far.
  ///
  /// The stats are *per thread* (thread-local scratch keyed by instance):
  /// the reset/compute/inspect pattern used for arc-scoped accounting stays
  /// race-free when multiple pool workers evaluate arcs against the same
  /// model concurrently.  Each thread sees only its own tallies.
  ///
  /// evaluateMany() does NOT touch these: each batched lane carries its own
  /// clampDistance in its DualResult, and the caller does its own arc-scoped
  /// accounting from those.
  struct ClampStats {
    std::uint64_t lookups = 0;   ///< total delay/transition ratio queries
    std::uint64_t clamped = 0;   ///< queries that fell outside the grid
    double maxDistance = 0.0;    ///< worst relative overshoot seen
  };
  ClampStats clampStats() const;
  void resetClampStats() const;
  /// Relative overshoot of this thread's most recent delayRatio/
  /// transitionRatio query (0 when it was in-grid).
  double lastClampDistance() const;

  /// Throws support::DiagnosticError with code TableMissing (carrying the
  /// reference pin) when no table covers the query.
  double delayRatio(const DualQuery& q) const override;
  double transitionRatio(const DualQuery& q) const override;

  /// Batched evaluation over the compiled SoA arena: answers queries[i]
  /// (its kind selecting delay vs transition) into results[i].  Values,
  /// clamp distances and window shortcuts are bit-identical to the
  /// corresponding scalar call; queries no table covers come back with
  /// Status::MissingTable instead of throwing.  Grid location runs per lane;
  /// the trilinear blend runs through the simd:: dispatch shim (AVX2/NEON
  /// with a scalar fallback, PROX_SIMD=off override).
  ///
  /// Not safe to call concurrently with set*Table (which recompiles the
  /// index); concurrent evaluateMany calls are fine.
  void evaluateMany(std::span<const DualQuery> queries,
                    std::span<DualResult> results) const;

  /// Total table storage in bytes.
  std::size_t totalBytes() const;

 private:
  static int key(int pin, wave::Edge edge) {
    return pin * 2 + (edge == wave::Edge::Rising ? 0 : 1);
  }
  static int pairKey(int refPin, int otherPin, wave::Edge edge) {
    return (refPin * 64 + otherPin) * 2 + (edge == wave::Edge::Rising ? 0 : 1);
  }
  struct StatsSlot {
    ClampStats stats;
    double lastClampDistance = 0.0;
  };
  /// The calling thread's stats slot for this instance.
  StatsSlot& statsSlot() const;

  /// One table's compiled view: dimensions plus offsets into arena_ for the
  /// three axis grids and the value plane.  strideU/strideV are the
  /// precomputed flattening strides (nv*nw and nw) so lane index arithmetic
  /// never re-derives them from grid sizes.  Each axis also carries its
  /// precomputed overshoot normalizer (the axis span, or max(|lo|, 1) for
  /// degenerate grids -- exactly overshoot()'s denominator) so the batched
  /// path never re-derives it per lane.
  struct TableView {
    std::uint32_t nu = 0, nv = 0, nw = 0;
    std::uint32_t strideU = 0, strideV = 0;
    std::uint32_t uOff = 0, vOff = 0, wOff = 0, valOff = 0;
    double uDenom = 1.0, vDenom = 1.0, wDenom = 1.0;
  };

  /// Recompiles arena_/views_/slot arrays from the table maps.  Called by
  /// every set*Table; cheap relative to characterizing even one table.
  void rebuildIndex();
  void appendView(const DualTable& t);

  const SingleInputModelSet& singles_;
  std::map<int, DualTable> delayTables_;
  std::map<int, DualTable> transitionTables_;
  std::map<int, DualTable> pairDelayTables_;
  std::map<int, DualTable> pairTransitionTables_;
  /// Process-unique instance id indexing the thread-local stats slots.
  std::uint64_t statsId_;

  // --- compiled SoA index (rebuilt by rebuildIndex) ---
  std::vector<double> arena_;      ///< all grids + value planes, contiguous
  std::vector<TableView> views_;   ///< one entry per installed table
  /// Dense slot arrays: map key -> view index, -1 when absent.  Sized to the
  /// largest installed key, so an out-of-range probe means "no table" --
  /// exactly what the map find would conclude.
  std::vector<std::int32_t> delaySlots_, transSlots_;
  std::vector<std::int32_t> pairDelaySlots_, pairTransSlots_;
};

}  // namespace prox::model
