#include "model/gate_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "support/diagnostic.hpp"
#include "support/fault_injection.hpp"

namespace prox::model {

Gate makeGate(const cells::CellSpec& spec, double vtcStep) {
  Gate g;
  g.spec = spec;
  g.thresholds = vtc::chooseThresholds(spec, vtcStep).chosen;
  return g;
}

Gate makeComplexGate(const cells::ComplexCellSpec& spec, double vtcStep) {
  Gate g;
  g.spec.type = cells::GateType::Complex;
  g.spec.fanin = spec.pinCount();
  g.spec.tech = spec.tech;
  g.spec.wn = spec.wn;
  g.spec.wp = spec.wp;
  g.spec.loadCap = spec.loadCap;
  g.complex = spec;
  g.thresholds = vtc::chooseComplexThresholds(spec, vtcStep).chosen;
  return g;
}

GateSimulator::GateSimulator(Gate gate) : gate_(std::move(gate)) {
  if (gate_.complex) {
    complexFixture_.emplace(*gate_.complex);
  } else {
    fixture_.emplace(gate_.spec);
  }
}

SimOutcome GateSimulator::simulate(const std::vector<InputEvent>& events,
                                   std::size_t refIdx, double dvMax) {
  if (events.empty()) throw std::invalid_argument("simulate: no events");
  if (refIdx >= events.size()) {
    throw std::invalid_argument("simulate: refIdx out of range");
  }
  if (PROX_FAULT_POINT("model.gate_sim.simulate", SimulationFailure)) {
    PROX_OBS_COUNT("model.gate_sim.injected_faults", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::SimulationFailed,
                                "gate_sim: injected simulation failure")
            .withSite("model.gate_sim")
            .withPin(events[refIdx].pin));
  }
  const double vdd = gate_.spec.tech.vdd;
  const wave::Thresholds& th = gate_.thresholds;

  // Shift the whole event set so every ramp starts strictly after t = 0 (the
  // DC operating point then sees the true initial levels), with a margin so
  // the output settles before the first event.
  double minStart = 1e30;
  double maxEnd = -1e30;
  double maxTau = 0.0;
  for (const InputEvent& ev : events) {
    const double t0 = rampStart(ev, vdd, th);
    minStart = std::min(minStart, t0);
    maxEnd = std::max(maxEnd, t0 + ev.tau);
    maxTau = std::max(maxTau, ev.tau);
  }
  const double margin = std::max(0.25e-9, 0.25 * maxTau);
  const double shift = margin - minStart;

  if (gate_.complex) {
    // Complex gate: the non-switching pins must be held at levels that
    // sensitize the switching subset.
    std::vector<int> subset;
    for (const InputEvent& ev : events) subset.push_back(ev.pin);
    const auto stable = gate_.complex->sensitizingAssignment(subset);
    if (!stable) {
      throw std::invalid_argument(
          "simulate: switching subset is not sensitizable on this gate");
    }
    for (int p = 0; p < gate_.pinCount(); ++p) {
      const bool switching =
          std::find(subset.begin(), subset.end(), p) != subset.end();
      if (!switching) {
        complexFixture_->setInputConstant(
            p, (*stable)[static_cast<std::size_t>(p)] ? vdd : 0.0);
      }
    }
    for (const InputEvent& ev : events) {
      InputEvent shifted = ev;
      shifted.tRef += shift;
      complexFixture_->setInput(ev.pin, makeInputWave(shifted, vdd, th));
    }
  } else {
    fixture_->setAllNonControlling();
    for (const InputEvent& ev : events) {
      InputEvent shifted = ev;
      shifted.tRef += shift;
      fixture_->setInput(ev.pin, makeInputWave(shifted, vdd, th));
    }
  }

  // Settle window after the last ramp completes: gate delays here are well
  // under a nanosecond, but slow ramps load the output for their full span.
  const double tstop = (maxEnd + shift) + std::max(3e-9, 2.0 * maxTau);

  ++simCount_;
  PROX_OBS_COUNT("model.gate_sim.transients", 1);
  PROX_OBS_SCOPED_TIMER("model.gate_sim.seconds");
  SimOutcome o;
  const wave::Waveform raw = gate_.complex
                                 ? complexFixture_->runOutput(tstop, dvMax)
                                 : fixture_->runOutput(tstop, dvMax);
  o.out = raw.shifted(-shift);
  o.minOutputVoltage = o.out.minValue();
  o.maxOutputVoltage = o.out.maxValue();

  const InputEvent& ref = events[refIdx];
  const wave::Edge outEdge = gate_.spec.outputEdgeFor(ref.edge);
  if (auto tOut = wave::outputRefTime(o.out, outEdge, th, o.out.startTime())) {
    o.outputRefTime = tOut;
    o.delay = *tOut - ref.tRef;
  }
  o.transitionTime = wave::transitionTime(o.out, outEdge, th);
  return o;
}

SimOutcome GateSimulator::simulateSingle(const InputEvent& ev, double dvMax) {
  return simulate({ev}, 0, dvMax);
}

}  // namespace prox::model
