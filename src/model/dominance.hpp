#pragma once
// Dominant-input identification (Section 3, Figure 3-2).
//
// Between two switching inputs a and b, the dominant input is the one whose
// *standalone* output response crosses the delay threshold closest to the
// combined response -- equivalently, the one with the earlier predicted
// crossing t_k + Delta_k^(1).  The paper's Step 1 relabeling condition
// (i before j iff s_ij > Delta_i^(1) - Delta_j^(1)) is exactly a sort by this
// predicted crossing time.

// Direction matters ("an analogous argument can be made for the case when
// the two inputs are rising"):
//   * transitions toward the gate's CONTROLLING value (falling inputs on a
//     NAND, rising on a NOR) drive parallel conduction paths -- the output
//     responds to the FIRST input, so the dominant input is the one with the
//     earliest predicted crossing;
//   * transitions toward the NON-CONTROLLING value (rising on a NAND,
//     falling on a NOR) must complete a series stack -- the output waits for
//     the LAST input, so the dominant input has the latest predicted
//     crossing.

#include <functional>
#include <vector>

#include "cells/pull_network.hpp"
#include "model/single_input.hpp"
#include "model/stimulus.hpp"

namespace prox::model {

/// Predicted standalone output crossing time of @p ev: tRef + Delta^(1)(tau).
double predictedCrossing(const InputEvent& ev, const SingleInputModelSet& singles);

/// Which end of the predicted-crossing order dominates.
enum class DominanceSense {
  EarliestFirst,  ///< parallel conduction: first input wins
  LatestFirst,    ///< series conduction: last input wins
};

/// Sense for a gate type and an input transition direction.
DominanceSense dominanceSense(cells::GateType type, wave::Edge inputEdge);

/// Sense for a complex gate: with the non-switching pins at a sensitizing
/// assignment, the switching subnetwork is OR-like when any single switching
/// pin can toggle the output by itself (parallel race: earliest wins) and
/// AND-like otherwise (series completion: latest wins).
DominanceSense complexDominanceSense(const cells::ComplexCellSpec& spec,
                                     const std::vector<int>& switchingPins,
                                     wave::Edge inputEdge);

/// Strategy that maps an event set to the dominance sense to use.
using SenseResolver =
    std::function<DominanceSense(const std::vector<InputEvent>&)>;

/// Resolver for a simple gate type.
SenseResolver senseResolverFor(cells::GateType type);

/// Resolver for a complex gate (copies @p spec).
SenseResolver senseResolverFor(const cells::ComplexCellSpec& spec);

/// Indices of @p events sorted by dominance (most dominant first) in the
/// given sense.  Ties are broken by event order, matching the paper's
/// observation that with identical inputs "our algorithm will identify one
/// of the inputs as the dominant one and proceed".
std::vector<std::size_t> dominanceOrder(const std::vector<InputEvent>& events,
                                        const SingleInputModelSet& singles,
                                        DominanceSense sense);

/// Convenience overload: EarliestFirst (the paper's Figure 3-2 derivation).
std::vector<std::size_t> dominanceOrder(const std::vector<InputEvent>& events,
                                        const SingleInputModelSet& singles);

/// Dominance crossover separation between two inputs (Figure 3-3): for
/// separations s_ab beyond Delta_a^(1) - Delta_b^(1), input a stops being
/// dominant.  Returns that crossover value.
double dominanceCrossover(const InputEvent& a, const InputEvent& b,
                          const SingleInputModelSet& singles);

}  // namespace prox::model
