#pragma once
// Input stimulus description used by the proximity model and every
// experiment: a transition on one pin, characterized by its direction, its
// full-swing transition time tau, and the time tRef at which it crosses the
// *reference threshold* (V_il for rising inputs, V_ih for falling inputs --
// the paper's Section 3 convention for measuring separations).

#include "waveform/measure.hpp"
#include "waveform/pwl.hpp"

namespace prox::model {

struct InputEvent {
  int pin = 0;
  wave::Edge edge = wave::Edge::Rising;
  double tRef = 0.0;    ///< reference-threshold crossing time [s]
  double tau = 100e-12; ///< full-swing transition time [s]
};

/// Separation s_ij from event @p i to event @p j (positive when j is later).
inline double separation(const InputEvent& i, const InputEvent& j) {
  return j.tRef - i.tRef;
}

/// Time at which the full-swing ramp realizing @p ev must start so that it
/// crosses its reference threshold exactly at ev.tRef.
double rampStart(const InputEvent& ev, double vdd, const wave::Thresholds& th);

/// The full-swing PWL waveform realizing @p ev.
wave::Waveform makeInputWave(const InputEvent& ev, double vdd,
                             const wave::Thresholds& th);

}  // namespace prox::model
