#include "model/dual_memo.hpp"

#include <cmath>

namespace prox::model {

namespace {

/// splitmix64 finalizer: the standard cheap 64-bit mixer.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

DualMemo::DualMemo(std::size_t capacity) {
  maxSlots_ = roundUpPow2(capacity < kProbeWindow ? kProbeWindow : capacity);
  slots_.resize(std::min<std::size_t>(maxSlots_, 256));
  mask_ = slots_.size() - 1;
}

DualMemo::Key DualMemo::makeKey(int refPin, int otherPin, bool risingEdge,
                                double tauRef, double tauOther, double sep) {
  // Attosecond quantization, matching the old map memo's keyOf().
  const auto quantize = [](double t) {
    return static_cast<std::int64_t>(std::llround(t * 1e18));
  };
  Key k;
  k.pins = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(refPin))
            << 33) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(otherPin))
            << 1) |
           (risingEdge ? 1u : 0u);
  k.tauRef = quantize(tauRef);
  k.tauOther = quantize(tauOther);
  k.sep = quantize(sep);
  return k;
}

std::uint64_t DualMemo::hashKey(const Key& key) {
  std::uint64_t h = mix(key.pins);
  h = mix(h ^ static_cast<std::uint64_t>(key.tauRef));
  h = mix(h ^ static_cast<std::uint64_t>(key.tauOther));
  h = mix(h ^ static_cast<std::uint64_t>(key.sep));
  return h;
}

bool DualMemo::find(const Key& key, Pair* out) {
  const std::uint64_t h = hashKey(key);
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t p = 0; p < kProbeWindow; ++p) {
    Slot& s = slots_[(h + p) & mask_];
    if (s.used && s.key == key) {
      s.stamp = ++stampCounter_;
      *out = s.value;
      return true;
    }
  }
  return false;
}

void DualMemo::insert(const Key& key, const Pair& value) {
  std::lock_guard<std::mutex> lock(mu_);
  // Grow at 5/8 load: probe windows stay short and eviction only kicks in
  // once the table is at its configured cap.
  if (used_ * 8 >= slots_.size() * 5 && slots_.size() < maxSlots_) grow();
  insertLocked(key, value, ++stampCounter_);
}

void DualMemo::grow() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t next = std::min(maxSlots_, old.size() * 4);
  slots_.assign(next, Slot{});
  mask_ = slots_.size() - 1;
  used_ = 0;
  for (const Slot& s : old) {
    if (s.used) insertLocked(s.key, s.value, s.stamp);
  }
}

void DualMemo::insertLocked(const Key& key, const Pair& value,
                            std::uint64_t stamp) {
  const std::uint64_t h = hashKey(key);
  Slot* victim = nullptr;
  for (std::size_t p = 0; p < kProbeWindow; ++p) {
    Slot& s = slots_[(h + p) & mask_];
    if (s.used && s.key == key) {
      victim = &s;  // overwrite in place
      break;
    }
    if (!s.used) {
      victim = &s;
      break;
    }
    if (victim == nullptr || s.stamp < victim->stamp) victim = &s;
  }
  if (!victim->used) ++used_;
  victim->used = true;
  victim->key = key;
  victim->value = value;
  victim->stamp = stamp;
}

}  // namespace prox::model
