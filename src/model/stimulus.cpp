#include "model/stimulus.hpp"

namespace prox::model {

double rampStart(const InputEvent& ev, double vdd, const wave::Thresholds& th) {
  if (ev.edge == wave::Edge::Rising) {
    // v(t) = vdd * (t - t0) / tau crosses V_il at t0 + tau * vil / vdd.
    return ev.tRef - ev.tau * (th.vil / vdd);
  }
  // v(t) = vdd * (1 - (t - t0) / tau) crosses V_ih at t0 + tau * (1 - vih/vdd).
  return ev.tRef - ev.tau * (1.0 - th.vih / vdd);
}

wave::Waveform makeInputWave(const InputEvent& ev, double vdd,
                             const wave::Thresholds& th) {
  const double t0 = rampStart(ev, vdd, th);
  return ev.edge == wave::Edge::Rising ? wave::risingRamp(t0, ev.tau, vdd)
                                       : wave::fallingRamp(t0, ev.tau, vdd);
}

}  // namespace prox::model
