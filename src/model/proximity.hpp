#pragma once
// Algorithm ProximityDelay (Section 4, Figure 4-1): multi-input delay and
// output transition time by repeated application of the dual-input
// proximity macromodel.
//
//   1. Order the switching inputs by dominance (most dominant = y1).
//   2. Delta := Delta_{y1}^(1).
//   3. For each next input y_i inside the proximity window (s_{y1,yi} <
//      Delta^{(i-1)}): replace the cumulative effect of y_1..y_{i-1} by an
//      equivalent waveform y* = y1 shifted so it reproduces the cumulative
//      crossing (eq 4.3), apply the dual-input model to (y*, y_i) (eq 4.4),
//      and change the reference back to y1 (eq 4.5):
//          Delta^{(i)} = Delta^{(i-1)}
//                      + Delta^{(1)} * [ D^(2)(tau_1/Delta^(1),
//                                              tau_i/Delta^(1),
//                                              (s + Delta^(1) - Delta^{(i-1)})/Delta^(1)) - 1 ]
//   4. Inputs outside the delay window but inside the transition window
//      (s < Delta + tau) still perturb the output transition time.
//   5. A corrective term repairs the two known failure modes (simultaneous
//      identical inputs; very late dominant input): full magnitude (the
//      characterized simultaneous-step error) for s_{y1,ym} <= 0, decaying
//      linearly to zero at s_{y1,ym} = Delta^{(m-1)}.

#include <optional>
#include <vector>

#include "model/dominance.hpp"
#include "model/dual_input.hpp"

namespace prox::model {

/// Characterized corrective-term magnitudes (Section 4).  Entry k-2 of each
/// vector is the signed error (simulation minus uncorrected algorithm) when
/// k inputs receive a simultaneous step in the given direction.
struct StepCorrection {
  std::vector<double> delayErrorRising;       ///< [k-2] signed delay error [s]
  std::vector<double> delayErrorFalling;
  std::vector<double> transitionErrorRising;  ///< [k-2] signed error [s]
  std::vector<double> transitionErrorFalling;

  bool empty() const {
    return delayErrorRising.empty() && delayErrorFalling.empty();
  }
  double delayFor(std::size_t inputCount, wave::Edge inputEdge) const;
  double transitionFor(std::size_t inputCount, wave::Edge inputEdge) const;
};

/// How per-input transition-time ratios combine across the composition loop.
enum class TransitionComposition {
  /// tau^(i) = tau^(i-1) * T2 -- the default; accurate because transition
  /// perturbations are large and compound (see DESIGN.md 4b).
  Multiplicative,
  /// tau^(i) = tau^(i-1) + tau^(1) (T2 - 1) -- the literal analog of the
  /// paper's delay recurrence (4.5); kept for the ablation bench.
  Additive,
};

struct ProximityOptions {
  bool applyCorrection = true;
  /// The paper notes "a similar correction can be done while computing the
  /// output transition time"; on our validation workload that correction
  /// *degraded* transition accuracy (see bench_ablation_correction), so it
  /// is opt-in.
  bool applyTransitionCorrection = false;
  TransitionComposition transitionComposition =
      TransitionComposition::Multiplicative;
  /// When false, inputs are processed in raw arrival order (earliest tRef
  /// first) instead of the paper's dominance order -- the naive alternative
  /// quantified by bench_ablation_dominance.
  bool orderByDominance = true;
};

struct ProximityResult {
  double delay = 0.0;           ///< wrt the dominant input's reference crossing
  double transitionTime = 0.0;  ///< output transition time
  int dominantPin = -1;
  double outputRefTime = 0.0;   ///< absolute output crossing time
  /// Pins folded into the delay, in processing order (dominant first).
  std::vector<int> processedPins;
  /// Pins that only influenced the transition time.
  std::vector<int> transitionOnlyPins;
  double correctionApplied = 0.0;  ///< signed corrective delay term [s]
};

class ProximityCalculator {
 public:
  /// All references must outlive the calculator.  @p gateType selects the
  /// dominance sense per transition direction (see dominance.hpp).
  ProximityCalculator(cells::GateType gateType,
                      const SingleInputModelSet& singles,
                      const DualInputModel& dual,
                      StepCorrection correction = {},
                      ProximityOptions options = {});

  /// Variant with an explicit dominance-sense strategy (used for complex
  /// gates, where the sense depends on the switching subnetwork).
  ProximityCalculator(SenseResolver sense, const SingleInputModelSet& singles,
                      const DualInputModel& dual,
                      StepCorrection correction = {},
                      ProximityOptions options = {});

  /// Computes delay/transition for a set of same-direction input events.
  /// Throws std::invalid_argument for empty input or mixed directions (use
  /// GlitchModel for opposite transitions).
  ProximityResult compute(const std::vector<InputEvent>& events) const;

  /// Classic single-input-switching calculation for the same events: the
  /// dominant input's Delta^(1)/tau^(1) with proximity ignored.  Used by the
  /// ablation and STA-comparison benches.
  ProximityResult computeClassic(const std::vector<InputEvent>& events) const;

 private:
  SenseResolver sense_;
  const SingleInputModelSet& singles_;
  const DualInputModel& dual_;
  StepCorrection correction_;
  ProximityOptions options_;
};

}  // namespace prox::model
