#pragma once
// Single-input macromodels Delta^(1)(tau) and tau^(1)(tau) -- equations (3.7)
// and (3.8) of the paper.  Dimensional analysis reduces each to a
// one-argument function of x = C_L / (K * Vdd * tau); we characterize on a
// tau grid at the cell's load and store both the raw (tau -> value) table and
// the normalized coordinate so the model transfers across loads.

#include <map>
#include <vector>

#include "model/gate_sim.hpp"

namespace prox::model {

class SingleInputModel {
 public:
  struct Sample {
    double tau = 0.0;         ///< input transition time [s]
    double delay = 0.0;       ///< Delta^(1) [s]
    double transition = 0.0;  ///< tau^(1) [s]
  };

  SingleInputModel() = default;

  /// @p table must be sorted by tau, non-empty.  @p strengthK is the paper's
  /// K = (1/2) mu Cox W/L of the driving transistor (pulldown for falling
  /// output, pullup for rising); together with @p loadCap and @p vdd it
  /// defines the normalized coordinate x = C_L/(K Vdd tau).
  SingleInputModel(int pin, wave::Edge edge, std::vector<Sample> table,
                   double loadCap, double strengthK, double vdd);

  int pin() const { return pin_; }
  wave::Edge edge() const { return edge_; }
  const std::vector<Sample>& table() const { return table_; }
  bool valid() const { return !table_.empty(); }
  double loadCap() const { return loadCap_; }
  double strengthK() const { return strengthK_; }
  double vdd() const { return vdd_; }

  /// Delta^(1) at transition time @p tau (linear interpolation in tau;
  /// linear extrapolation beyond the grid).
  double delay(double tau) const;

  /// tau^(1) at transition time @p tau.
  double transition(double tau) const;

  /// The dimensionless load coordinate x = C_L / (K Vdd tau) -- eq (3.7).
  double normalizedX(double tau) const;

  /// Delta^(1)/tau as a function of x (the normalized macromodel form).
  /// Provided for the normalized-form tests and the Fig 4-2 storage bench.
  double delayOverTauAtX(double x) const;

  /// Characterizes the model by simulating the gate for each tau in @p grid.
  static SingleInputModel characterize(GateSimulator& sim, int pin,
                                       wave::Edge edge,
                                       const std::vector<double>& tauGrid);

 private:
  int pin_ = -1;
  wave::Edge edge_ = wave::Edge::Rising;
  std::vector<Sample> table_;
  double loadCap_ = 0.0;
  double strengthK_ = 0.0;
  double vdd_ = 0.0;
};

/// The per-gate collection of single-input macromodels: one per (pin, edge).
class SingleInputModelSet {
 public:
  void set(SingleInputModel m);
  bool has(int pin, wave::Edge edge) const;
  const SingleInputModel& at(int pin, wave::Edge edge) const;

  /// Characterizes models for every pin of the gate in both directions.
  static SingleInputModelSet characterizeAll(GateSimulator& sim,
                                             const std::vector<double>& tauGrid);

 private:
  static int key(int pin, wave::Edge edge) {
    return pin * 2 + (edge == wave::Edge::Rising ? 0 : 1);
  }
  std::map<int, SingleInputModel> models_;
};

}  // namespace prox::model
