#pragma once
// Open-addressing memo for oracle dual-input evaluations.
//
// Replaces the old mutex-guarded std::map<tuple<...>> cache: queries are
// quantized to attosecond-resolution integers, mixed into a single packed
// 64-bit hash key, and stored in a fixed-capacity power-of-two slot array
// with linear probing.  Each slot keeps the exact quantized coordinates next
// to the hash, so a (vanishingly unlikely) 64-bit hash collision can never
// alias two distinct queries -- the memo stays exact, like the map it
// replaces.
//
// Eviction is least-recently-used within the probe window, driven by a
// monotonic per-memo stamp counter, so which entry is displaced is a pure
// function of the operation sequence (deterministic).  Evicting is always
// safe: oracle evaluations are pure, so a displaced entry simply re-simulates
// to the identical value.
//
// The memo is mutex-guarded and therefore thread-safe on its own; note the
// simulator behind OracleDualInputModel is NOT, so concurrent callers still
// need one oracle + simulator per thread (as the parallel sweep does).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace prox::model {

class DualMemo {
 public:
  struct Pair {
    double delayRatio = 1.0;
    double transitionRatio = 1.0;
  };

  /// Exact quantized query coordinates: pins + edge packed into one word,
  /// the three times as attosecond-quantized integers.
  struct Key {
    std::uint64_t pins = 0;  ///< refPin, otherPin, edge bit packed
    std::int64_t tauRef = 0;
    std::int64_t tauOther = 0;
    std::int64_t sep = 0;

    bool operator==(const Key& o) const {
      return pins == o.pins && tauRef == o.tauRef && tauOther == o.tauOther &&
             sep == o.sep;
    }
  };

  /// @p capacity (rounded up to a power of two) caps the slot count; the
  /// default 64k slots comfortably covers a full characterization sweep's
  /// query set.  Storage starts small (256 slots) and quadruples as entries
  /// accumulate, so short-lived memos -- e.g. the per-point oracles of the
  /// parallel sweep -- never pay for the full table.
  explicit DualMemo(std::size_t capacity = std::size_t{1} << 16);

  static Key makeKey(int refPin, int otherPin, bool risingEdge, double tauRef,
                     double tauOther, double sep);

  /// True (and fills @p out) when the key is cached; refreshes its LRU stamp.
  bool find(const Key& key, Pair* out);

  /// Inserts (or overwrites) the value for @p key, evicting the
  /// least-recently-stamped entry in the probe window when the table has
  /// reached its capacity cap and the window is full.
  void insert(const Key& key, const Pair& value);

  /// The configured slot-count cap (storage may currently be smaller).
  std::size_t capacity() const { return maxSlots_; }

 private:
  struct Slot {
    bool used = false;
    Key key;
    Pair value;
    std::uint64_t stamp = 0;
  };

  /// Packed 64-bit hash of the quantized key (splitmix64 over the fields).
  static std::uint64_t hashKey(const Key& key);

  /// Quadruples the slot array (up to maxSlots_) and rehashes live entries,
  /// preserving their stamps.  Caller holds mu_.
  void grow();
  /// Probe-window insert (no growth check).  Caller holds mu_.
  void insertLocked(const Key& key, const Pair& value, std::uint64_t stamp);

  static constexpr std::size_t kProbeWindow = 8;

  std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::size_t maxSlots_ = 0;
  std::size_t used_ = 0;
  std::uint64_t stampCounter_ = 0;
};

}  // namespace prox::model
