#include "model/proximity.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/registry.hpp"

namespace prox::model {

namespace {
double lookupCorrection(const std::vector<double>& table,
                        std::size_t inputCount) {
  if (inputCount < 2 || table.empty()) return 0.0;
  const std::size_t idx = std::min(inputCount - 2, table.size() - 1);
  return table[idx];
}
}  // namespace

double StepCorrection::delayFor(std::size_t inputCount,
                                wave::Edge inputEdge) const {
  return lookupCorrection(
      inputEdge == wave::Edge::Rising ? delayErrorRising : delayErrorFalling,
      inputCount);
}

double StepCorrection::transitionFor(std::size_t inputCount,
                                     wave::Edge inputEdge) const {
  return lookupCorrection(inputEdge == wave::Edge::Rising
                              ? transitionErrorRising
                              : transitionErrorFalling,
                          inputCount);
}

ProximityCalculator::ProximityCalculator(cells::GateType gateType,
                                         const SingleInputModelSet& singles,
                                         const DualInputModel& dual,
                                         StepCorrection correction,
                                         ProximityOptions options)
    : ProximityCalculator(senseResolverFor(gateType), singles, dual,
                          std::move(correction), options) {}

ProximityCalculator::ProximityCalculator(SenseResolver sense,
                                         const SingleInputModelSet& singles,
                                         const DualInputModel& dual,
                                         StepCorrection correction,
                                         ProximityOptions options)
    : sense_(std::move(sense)),
      singles_(singles),
      dual_(dual),
      correction_(std::move(correction)),
      options_(options) {}

ProximityResult ProximityCalculator::compute(
    const std::vector<InputEvent>& events) const {
  if (events.empty()) {
    throw std::invalid_argument("ProximityCalculator: no events");
  }
  for (const InputEvent& ev : events) {
    if (ev.edge != events.front().edge) {
      throw std::invalid_argument(
          "ProximityCalculator: mixed transition directions (use GlitchModel)");
    }
  }

  // This is the library's hottest entry point (sub-microsecond per call), so
  // all instrument sites share one batched cell fetch.
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.computes", 1);
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_seen", events.size());

  const DominanceSense sense = sense_(events);
  std::vector<std::size_t> order;
  if (options_.orderByDominance) {
    order = dominanceOrder(events, singles_, sense);
#if PROX_ENABLE_STATS
    // A dominance reordering is any deviation from arrival order in the
    // sense direction (ascending tRef for earliest-first, descending for
    // latest-first) -- the paper's Step 1 doing real work rather than
    // echoing the input sequence.
    if (obsCells != nullptr &&
        !std::is_sorted(order.begin(), order.end(),
                        [&](std::size_t a, std::size_t b) {
                          return sense == DominanceSense::EarliestFirst
                                     ? events[a].tRef < events[b].tRef
                                     : events[a].tRef > events[b].tRef;
                        })) {
      PROX_OBS_COUNT_IN(obsCells, "model.proximity.dominance_reorders", 1);
    }
#endif
  } else {
    order.resize(events.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return events[a].tRef < events[b].tRef;
    });
  }
  const InputEvent& y1 = events[order[0]];
  const SingleInputModel& m1 = singles_.at(y1.pin, y1.edge);
  const double d1 = m1.delay(y1.tau);     // Delta_{y1}^{(1)}
  const double t1 = m1.transition(y1.tau);  // tau_{y1}^{(1)}

  ProximityResult res;
  res.dominantPin = y1.pin;
  res.processedPins.push_back(y1.pin);

  double dCum = d1;  // Delta^{(i-1)} running value
  double tCum = t1;
  // Delta^{(m-1)}: cumulative delay *before* the last processed input was
  // folded in -- the corrective term's decay length.
  double dBeforeLast = d1;
  double sLast = 0.0;  // s_{y1, ym} of the last processed input

  for (std::size_t idx = 1; idx < order.size(); ++idx) {
    const InputEvent& yi = events[order[idx]];
    const double s = yi.tRef - y1.tRef;  // s_{y1, yi}

    DualQuery q;
    q.refPin = y1.pin;
    q.otherPin = yi.pin;
    q.edge = y1.edge;
    q.tauRef = y1.tau;
    q.tauOther = yi.tau;

    // Transition-time perturbation: the paper's "slight modification of the
    // algorithm".  Two differences from the delay chain, both validated
    // against the simulator: the equivalent waveform is aligned on the
    // output's *completion* time (Delta + tau) instead of its crossing, and
    // ratios compose multiplicatively -- transition-time perturbations are
    // large (a second parallel path can halve the transition), where the
    // additive form double-counts.
    const auto foldTransition = [&] {
      DualQuery qt = q;
      qt.sep = s + (d1 + t1) - (dCum + tCum);
      const double tRatio = dual_.transitionRatio(qt);
      if (options_.transitionComposition == TransitionComposition::Additive) {
        tCum += t1 * (tRatio - 1.0);
      } else {
        tCum *= tRatio;
      }
    };

    if (s < dCum) {
      // Inside the delay proximity window: apply eq (4.4)/(4.5) with the
      // equivalent-waveform shift.
      q.sep = s + d1 - dCum;  // separation measured from y*
      foldTransition();
      const double ratio = dual_.delayRatio(q);
      dBeforeLast = dCum;
      dCum += d1 * (ratio - 1.0);
      sLast = s;
      res.processedPins.push_back(yi.pin);
    } else if (s < dCum + tCum) {
      // Outside the delay window but inside the transition-time window
      // (Section 3: only for s > Delta^(1) + tau^(1) can the effect on the
      // output transition time be ignored).
      foldTransition();
      res.transitionOnlyPins.push_back(yi.pin);
    } else {
      // Step 3's loop condition: with earliest-first ordering the first
      // input outside the window stops the processing (later inputs are
      // assumed unimportant).  With latest-first ordering (series stacks)
      // the remaining inputs are *earlier*, not later, so they are skipped
      // individually rather than cutting the loop.
      if (sense == DominanceSense::EarliestFirst) {
        PROX_OBS_COUNT_IN(obsCells, "model.proximity.window_exits", 1);
        PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_window_skipped",
                          order.size() - idx);
        break;
      }
      PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_window_skipped", 1);
    }
  }

  // Corrective term (Section 4): bounded by the simultaneous-step error,
  // fading linearly to zero at s_{y1,ym} = Delta^{(m-1)}.
  if (options_.applyCorrection && res.processedPins.size() >= 2 &&
      !correction_.empty()) {
    // With latest-first ordering the "spreading apart" direction is negative
    // separation, so the fade mirrors.
    const double sEff =
        sense == DominanceSense::EarliestFirst ? sLast : -sLast;
    const double weight =
        sEff <= 0.0
            ? 1.0
            : std::max(0.0, 1.0 - sEff / std::max(dBeforeLast, 1e-18));
    const double dc =
        correction_.delayFor(res.processedPins.size(), y1.edge) * weight;
    dCum += dc;
    if (options_.applyTransitionCorrection) {
      tCum += correction_.transitionFor(res.processedPins.size(), y1.edge) *
              weight;
    }
    res.correctionApplied = dc;
    if (dc != 0.0) {
      PROX_OBS_COUNT_IN(obsCells, "model.proximity.corrections_applied", 1);
      // Magnitude of the corrective term, recorded as a real-valued sample
      // (seconds): mean/min/max show how hard the repair works in practice.
      PROX_OBS_RECORD_IN(obsCells, "model.proximity.correction_magnitude_s",
                         std::fabs(dc));
    }
  }

  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_processed",
                    res.processedPins.size());
  PROX_OBS_COUNT_IN(obsCells, "model.proximity.inputs_transition_only",
                    res.transitionOnlyPins.size());

  res.delay = dCum;
  res.transitionTime = std::max(tCum, 0.0);
  res.outputRefTime = y1.tRef + dCum;
  return res;
}

ProximityResult ProximityCalculator::computeClassic(
    const std::vector<InputEvent>& events) const {
  if (events.empty()) {
    throw std::invalid_argument("ProximityCalculator: no events");
  }
  PROX_OBS_COUNT("model.proximity.classic_computes", 1);
  const std::vector<std::size_t> order =
      dominanceOrder(events, singles_, sense_(events));
  const InputEvent& y1 = events[order[0]];
  const SingleInputModel& m1 = singles_.at(y1.pin, y1.edge);

  ProximityResult res;
  res.dominantPin = y1.pin;
  res.processedPins.push_back(y1.pin);
  res.delay = m1.delay(y1.tau);
  res.transitionTime = m1.transition(y1.tau);
  res.outputRefTime = y1.tRef + res.delay;
  return res;
}

}  // namespace prox::model
