#include "model/glitch.hpp"

#include <algorithm>
#include <stdexcept>

namespace prox::model {

GlitchAnalyzer::GlitchAnalyzer(GateSimulator& sim) : sim_(sim) {}

GlitchOutcome GlitchAnalyzer::analyze(const InputEvent& falling,
                                      const InputEvent& rising) {
  if (falling.edge != wave::Edge::Falling || rising.edge != wave::Edge::Rising) {
    throw std::invalid_argument("GlitchAnalyzer: events must be falling+rising");
  }
  const SimOutcome o = sim_.simulate({falling, rising}, 0);
  const bool norLike = sim_.gate().spec.type == cells::GateType::Nor;

  GlitchOutcome g;
  g.out = o.out;
  if (norLike) {
    // NOR: output rests low; the glitch is a positive excursion, complete
    // once it passes V_ih.
    g.extremeVoltage = o.maxOutputVoltage;
    g.completed = g.extremeVoltage >= sim_.thresholds().vih;
  } else {
    // NAND: negative-going glitch, complete once it dips below V_il.
    g.extremeVoltage = o.minOutputVoltage;
    g.completed = g.extremeVoltage <= sim_.thresholds().vil;
  }
  return g;
}

GlitchModel GlitchModel::characterize(GateSimulator& sim, int fallPin,
                                      double tauFall, int risePin,
                                      double tauRise,
                                      const std::vector<double>& sepGrid) {
  if (sepGrid.size() < 2) {
    throw std::invalid_argument("GlitchModel: need at least two separations");
  }
  if (!std::is_sorted(sepGrid.begin(), sepGrid.end())) {
    throw std::invalid_argument("GlitchModel: separations must ascend");
  }
  GlitchAnalyzer analyzer(sim);
  GlitchModel m;
  m.norLike_ = sim.gate().spec.type == cells::GateType::Nor;
  for (double s : sepGrid) {
    InputEvent rise{risePin, wave::Edge::Rising, 0.0, tauRise};
    InputEvent fall{fallPin, wave::Edge::Falling, s, tauFall};
    const GlitchOutcome g = analyzer.analyze(fall, rise);
    m.sep_.push_back(s);
    m.v_.push_back(g.extremeVoltage);
  }
  return m;
}

double GlitchModel::extremeVoltage(double s) const {
  if (sep_.empty()) throw std::runtime_error("GlitchModel: not characterized");
  if (s <= sep_.front()) return v_.front();
  if (s >= sep_.back()) return v_.back();
  std::size_t hi = 1;
  while (hi + 1 < sep_.size() && sep_[hi] < s) ++hi;
  const double f = (s - sep_[hi - 1]) / (sep_[hi] - sep_[hi - 1]);
  return v_[hi - 1] + f * (v_[hi] - v_[hi - 1]);
}

GlitchSurface GlitchSurface::characterize(GateSimulator& sim, int fallPin,
                                          double tauFall, int risePin,
                                          const std::vector<double>& tauRiseGrid,
                                          const std::vector<double>& sepGrid) {
  if (tauRiseGrid.empty() || sepGrid.size() < 2) {
    throw std::invalid_argument("GlitchSurface: grids too small");
  }
  if (!std::is_sorted(tauRiseGrid.begin(), tauRiseGrid.end()) ||
      !std::is_sorted(sepGrid.begin(), sepGrid.end())) {
    throw std::invalid_argument("GlitchSurface: grids must ascend");
  }
  GlitchSurface g;
  g.tau_ = tauRiseGrid;
  g.sep_ = sepGrid;
  g.v_.reserve(tauRiseGrid.size() * sepGrid.size());
  for (double tauRise : tauRiseGrid) {
    const GlitchModel row =
        GlitchModel::characterize(sim, fallPin, tauFall, risePin, tauRise,
                                  sepGrid);
    g.v_.insert(g.v_.end(), row.voltages().begin(), row.voltages().end());
  }
  return g;
}

namespace {

/// Locates x in an ascending grid: clamped lower index + fraction.
std::pair<std::size_t, double> locate1d(const std::vector<double>& grid,
                                        double x) {
  if (grid.size() == 1 || x <= grid.front()) return {0, 0.0};
  if (x >= grid.back()) return {grid.size() - 2, 1.0};
  std::size_t hi = 1;
  while (hi + 1 < grid.size() && grid[hi] < x) ++hi;
  return {hi - 1, (x - grid[hi - 1]) / (grid[hi] - grid[hi - 1])};
}

}  // namespace

double GlitchSurface::extremeVoltage(double tauRise, double sep) const {
  if (v_.empty()) throw std::runtime_error("GlitchSurface: not characterized");
  const auto [it, ft] = locate1d(tau_, tauRise);
  const auto [is, fs] = locate1d(sep_, sep);
  const std::size_t it1 = std::min(it + 1, tau_.size() - 1);
  const std::size_t is1 = std::min(is + 1, sep_.size() - 1);
  const double a = at(it, is) + fs * (at(it, is1) - at(it, is));
  const double b = at(it1, is) + fs * (at(it1, is1) - at(it1, is));
  return a + ft * (b - a);
}

std::optional<double> GlitchSurface::minimumValidSeparation(double tauRise,
                                                            double level) const {
  if (v_.empty()) throw std::runtime_error("GlitchSurface: not characterized");
  // Downward crossing of `level` along the interpolated sep axis.
  double prev = extremeVoltage(tauRise, sep_.front());
  for (std::size_t i = 1; i < sep_.size(); ++i) {
    const double cur = extremeVoltage(tauRise, sep_[i]);
    if (prev > level && cur <= level) {
      const double f = (level - prev) / (cur - prev);
      return sep_[i - 1] + f * (sep_[i] - sep_[i - 1]);
    }
    prev = cur;
  }
  return std::nullopt;
}

std::optional<double> GlitchModel::minimumValidSeparation(double level) const {
  if (sep_.empty()) throw std::runtime_error("GlitchModel: not characterized");
  // With s = t(fall) - t(rise) ascending, the pulldown (NAND) conduction
  // window grows with s, so the minimum voltage falls through V_il from
  // above; the NOR pullup window shrinks with s, so the maximum voltage also
  // falls through V_ih from above.  In both cases the boundary is the
  // downward crossing of `level`: the NAND output completes its transition
  // for s >= the returned separation, the NOR output for s <= it.
  for (std::size_t i = 1; i < sep_.size(); ++i) {
    const double a = v_[i - 1];
    const double b = v_[i];
    if (a > level && b <= level) {
      const double f = (level - a) / (b - a);
      return sep_[i - 1] + f * (sep_[i] - sep_[i - 1]);
    }
  }
  return std::nullopt;
}

}  // namespace prox::model
