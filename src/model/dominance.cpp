#include "model/dominance.hpp"

#include <algorithm>
#include <numeric>

namespace prox::model {

double predictedCrossing(const InputEvent& ev, const SingleInputModelSet& singles) {
  return ev.tRef + singles.at(ev.pin, ev.edge).delay(ev.tau);
}

DominanceSense dominanceSense(cells::GateType type, wave::Edge inputEdge) {
  // Controlling value: 0 for NAND/inverter, 1 (Vdd) for NOR.  A transition
  // toward the controlling value engages the parallel bank (earliest wins);
  // toward the non-controlling value it completes the series stack (latest
  // wins).
  const bool towardControlling = type == cells::GateType::Nor
                                     ? inputEdge == wave::Edge::Rising
                                     : inputEdge == wave::Edge::Falling;
  return towardControlling ? DominanceSense::EarliestFirst
                           : DominanceSense::LatestFirst;
}

std::vector<std::size_t> dominanceOrder(const std::vector<InputEvent>& events,
                                        const SingleInputModelSet& singles,
                                        DominanceSense sense) {
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ca = predictedCrossing(events[a], singles);
                     const double cb = predictedCrossing(events[b], singles);
                     return sense == DominanceSense::EarliestFirst ? ca < cb
                                                                   : ca > cb;
                   });
  return order;
}

std::vector<std::size_t> dominanceOrder(const std::vector<InputEvent>& events,
                                        const SingleInputModelSet& singles) {
  return dominanceOrder(events, singles, DominanceSense::EarliestFirst);
}

DominanceSense complexDominanceSense(const cells::ComplexCellSpec& spec,
                                     const std::vector<int>& switchingPins,
                                     wave::Edge inputEdge) {
  if (switchingPins.size() < 2) return DominanceSense::EarliestFirst;
  const auto stable = spec.sensitizingAssignment(switchingPins);
  if (!stable) return DominanceSense::EarliestFirst;  // degenerate; unused

  // Pre-transition level of the switching pins: low for rising, high for
  // falling.  If flipping any single pin to its post-transition level
  // already toggles the output, the first arrival wins the race.
  const bool pre = inputEdge == wave::Edge::Falling;
  std::vector<bool> base = *stable;
  for (int p : switchingPins) base[static_cast<std::size_t>(p)] = pre;
  const bool outBefore = spec.outputFor(base);
  for (int p : switchingPins) {
    std::vector<bool> probe = base;
    probe[static_cast<std::size_t>(p)] = !pre;
    if (spec.outputFor(probe) != outBefore) {
      return DominanceSense::EarliestFirst;
    }
  }
  return DominanceSense::LatestFirst;
}

SenseResolver senseResolverFor(cells::GateType type) {
  return [type](const std::vector<InputEvent>& events) {
    return dominanceSense(type, events.front().edge);
  };
}

SenseResolver senseResolverFor(const cells::ComplexCellSpec& spec) {
  return [spec](const std::vector<InputEvent>& events) {
    std::vector<int> pins;
    for (const InputEvent& ev : events) pins.push_back(ev.pin);
    return complexDominanceSense(spec, pins, events.front().edge);
  };
}

double dominanceCrossover(const InputEvent& a, const InputEvent& b,
                          const SingleInputModelSet& singles) {
  const double da = singles.at(a.pin, a.edge).delay(a.tau);
  const double db = singles.at(b.pin, b.edge).delay(b.tau);
  return da - db;
}

}  // namespace prox::model
