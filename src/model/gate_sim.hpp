#pragma once
// Gate-level simulation facade: runs the transistor-level simulator on a cell
// with a set of input events and measures delay / transition time using the
// Section 2 thresholds.  This is the "HSPICE" of the reproduction -- both the
// characterization flow and the validation experiments go through it.

#include <optional>
#include <vector>

#include "cells/complex_fixture.hpp"
#include "cells/fixture.hpp"
#include "model/dual_memo.hpp"
#include "model/stimulus.hpp"
#include "vtc/complex.hpp"
#include "vtc/thresholds.hpp"

namespace prox::model {

/// A gate plus its (Section 2) measurement thresholds.
///
/// For simple cells `spec` fully describes the circuit.  For complex
/// (AOI/OAI) gates `complex` holds the pull network and `spec` mirrors the
/// common fields (type = GateType::Complex, fanin, technology, sizing, load)
/// so that downstream code can treat both uniformly.
struct Gate {
  cells::CellSpec spec;
  std::optional<cells::ComplexCellSpec> complex;
  wave::Thresholds thresholds;

  int pinCount() const {
    return spec.type == cells::GateType::Inverter ? 1 : spec.fanin;
  }
};

/// Builds a Gate by extracting every VTC and applying the min-V_il/max-V_ih
/// rule.  @p vtcStep is the DC sweep increment.
Gate makeGate(const cells::CellSpec& spec, double vtcStep = 0.01);

/// Complex-gate variant: thresholds come from every *sensitizable* subset's
/// VTC (see vtc/complex.hpp).
Gate makeComplexGate(const cells::ComplexCellSpec& spec, double vtcStep = 0.01);

/// Result of one measured transient.
struct SimOutcome {
  wave::Waveform out;                     ///< output waveform (absolute time)
  std::optional<double> delay;            ///< wrt the reference event [s]
  std::optional<double> transitionTime;   ///< output transition time [s]
  std::optional<double> outputRefTime;    ///< absolute output crossing [s]
  double minOutputVoltage = 0.0;          ///< over the simulated window
  double maxOutputVoltage = 0.0;
};

class GateSimulator {
 public:
  explicit GateSimulator(Gate gate);

  const Gate& gate() const { return gate_; }
  const wave::Thresholds& thresholds() const { return gate_.thresholds; }

  /// Simulates the gate with @p events applied (remaining inputs held at the
  /// non-controlling level).  Delay and transition time are measured with
  /// respect to events[refIdx] and the output edge implied by its direction.
  /// Events may sit anywhere on the time axis (including negative tRef); the
  /// simulation window is shifted and sized automatically.
  SimOutcome simulate(const std::vector<InputEvent>& events,
                      std::size_t refIdx = 0, double dvMax = 0.05);

  /// Single-switching-input measurement (the Delta^(1)/tau^(1) primitives).
  SimOutcome simulateSingle(const InputEvent& ev, double dvMax = 0.05);

  /// Number of transistor-level transients run so far (for the perf bench).
  long simulationCount() const { return simCount_; }

  /// Memo shared by every OracleDualInputModel constructed over this
  /// simulator (serial characterization passes it explicitly), so repeated
  /// (pins, slew, separation) oracle queries across sweep steps -- and across
  /// whole sweeps over the same simulator -- skip the transient re-run.
  DualMemo& dualMemo() { return dualMemo_; }

 private:
  Gate gate_;
  std::optional<cells::CellFixture> fixture_;
  std::optional<cells::ComplexCellFixture> complexFixture_;
  long simCount_ = 0;
  DualMemo dualMemo_;
};

}  // namespace prox::model
