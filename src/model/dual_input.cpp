#include "model/dual_input.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"

namespace prox::model {

namespace {

/// Index of the grid cell containing @p x, clamped to the valid range, plus
/// the interpolation fraction.
std::pair<std::size_t, double> locate(const std::vector<double>& grid, double x) {
  if (grid.size() == 1) return {0, 0.0};
  if (x <= grid.front()) return {0, 0.0};
  if (x >= grid.back()) return {grid.size() - 2, 1.0};
  std::size_t hi = 1;
  while (hi + 1 < grid.size() && grid[hi] < x) ++hi;
  const double f = (x - grid[hi - 1]) / (grid[hi] - grid[hi - 1]);
  return {hi - 1, f};
}

/// Relative overshoot of @p x beyond the grid span (0 for in-grid queries).
/// Degenerate single-point grids normalize by the point's magnitude instead.
double overshoot(const std::vector<double>& grid, double x) {
  const double lo = grid.front();
  const double hi = grid.back();
  if (x >= lo && x <= hi) return 0.0;
  const double span = hi - lo;
  const double denom = span > 0.0 ? span : std::max(std::fabs(lo), 1.0);
  return (x < lo ? lo - x : x - hi) / denom;
}

}  // namespace

std::size_t DualTable::healedCount() const {
  std::size_t n = 0;
  for (const std::uint8_t h : healed) n += h != 0 ? 1 : 0;
  return n;
}

double DualTable::interpolate(double uu, double vv, double ww,
                              double* clampDistance) const {
  if (u.empty() || v.empty() || w.empty()) {
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "DualTable: empty grid")
            .withSite("model.dual"));
  }
  if (clampDistance != nullptr) {
    *clampDistance =
        std::max({overshoot(u, uu), overshoot(v, vv), overshoot(w, ww)});
  }
  const auto [iu, fu] = locate(u, uu);
  const auto [iv, fv] = locate(v, vv);
  const auto [iw, fw] = locate(w, ww);
  const std::size_t iu1 = std::min(iu + 1, u.size() - 1);
  const std::size_t iv1 = std::min(iv + 1, v.size() - 1);
  const std::size_t iw1 = std::min(iw + 1, w.size() - 1);

  auto lerp = [](double a, double b, double f) { return a + f * (b - a); };
  const double c00 = lerp(at(iu, iv, iw), at(iu1, iv, iw), fu);
  const double c01 = lerp(at(iu, iv, iw1), at(iu1, iv, iw1), fu);
  const double c10 = lerp(at(iu, iv1, iw), at(iu1, iv1, iw), fu);
  const double c11 = lerp(at(iu, iv1, iw1), at(iu1, iv1, iw1), fu);
  const double c0 = lerp(c00, c10, fv);
  const double c1 = lerp(c01, c11, fv);
  return lerp(c0, c1, fw);
}

OracleDualInputModel::OracleDualInputModel(GateSimulator& sim,
                                           const SingleInputModelSet& singles)
    : sim_(sim), singles_(singles) {}

OracleDualInputModel::Pair OracleDualInputModel::evaluate(const DualQuery& q) const {
  // Memoize on femtosecond-quantized times: queries repeated across sweeps
  // (the common case in the benches) hit the cache.
  const auto keyOf = [](double t) { return std::lround(t * 1e18); };
  const auto key = std::make_tuple(q.refPin, q.otherPin,
                                   q.edge == wave::Edge::Rising ? 0 : 1,
                                   keyOf(q.tauRef), keyOf(q.tauOther),
                                   keyOf(q.sep));
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      PROX_OBS_COUNT("model.dual.oracle_cache_hits", 1);
      return it->second;
    }
  }
  PROX_OBS_COUNT("model.dual.oracle_evals", 1);

  InputEvent ref{q.refPin, q.edge, 0.0, q.tauRef};
  InputEvent other{q.otherPin, q.edge, q.sep, q.tauOther};
  const SimOutcome o = sim_.simulate({ref, other}, 0);

  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  const double t1 = m.transition(q.tauRef);

  Pair p{1.0, 1.0};
  if (o.delay && d1 > 0.0) p.delayRatio = *o.delay / d1;
  if (o.transitionTime && t1 > 0.0) p.transitionRatio = *o.transitionTime / t1;
  {
    std::lock_guard<std::mutex> lock(cacheMu_);
    cache_.emplace(key, p);
  }
  return p;
}

double OracleDualInputModel::delayRatio(const DualQuery& q) const {
  return evaluate(q).delayRatio;
}

double OracleDualInputModel::transitionRatio(const DualQuery& q) const {
  return evaluate(q).transitionRatio;
}

namespace {
// Process-unique ids index each thread's slot vector, so two threads (or two
// model instances) never share clamp-stats storage.
std::atomic<std::uint64_t> gNextStatsId{0};
}  // namespace

TabulatedDualInputModel::TabulatedDualInputModel(const SingleInputModelSet& singles)
    : singles_(singles),
      statsId_(gNextStatsId.fetch_add(1, std::memory_order_relaxed)) {}

TabulatedDualInputModel::StatsSlot& TabulatedDualInputModel::statsSlot() const {
  thread_local std::vector<StatsSlot> slots;
  if (slots.size() <= statsId_) {
    slots.resize(static_cast<std::size_t>(statsId_) + 1);
  }
  return slots[static_cast<std::size_t>(statsId_)];
}

TabulatedDualInputModel::ClampStats TabulatedDualInputModel::clampStats() const {
  return statsSlot().stats;
}

void TabulatedDualInputModel::resetClampStats() const {
  statsSlot() = StatsSlot{};
}

double TabulatedDualInputModel::lastClampDistance() const {
  return statsSlot().lastClampDistance;
}

void TabulatedDualInputModel::setDelayTable(int refPin, wave::Edge edge,
                                            DualTable table) {
  delayTables_[key(refPin, edge)] = std::move(table);
}

void TabulatedDualInputModel::setTransitionTable(int refPin, wave::Edge edge,
                                                 DualTable table) {
  transitionTables_[key(refPin, edge)] = std::move(table);
}

void TabulatedDualInputModel::setPairDelayTable(int refPin, int otherPin,
                                                wave::Edge edge,
                                                DualTable table) {
  pairDelayTables_[pairKey(refPin, otherPin, edge)] = std::move(table);
}

void TabulatedDualInputModel::setPairTransitionTable(int refPin, int otherPin,
                                                     wave::Edge edge,
                                                     DualTable table) {
  pairTransitionTables_[pairKey(refPin, otherPin, edge)] = std::move(table);
}

bool TabulatedDualInputModel::hasTables(int refPin, wave::Edge edge) const {
  return delayTables_.count(key(refPin, edge)) != 0 &&
         transitionTables_.count(key(refPin, edge)) != 0;
}

bool TabulatedDualInputModel::hasPairTables(int refPin, int otherPin,
                                            wave::Edge edge) const {
  return pairDelayTables_.count(pairKey(refPin, otherPin, edge)) != 0 &&
         pairTransitionTables_.count(pairKey(refPin, otherPin, edge)) != 0;
}

const DualTable& TabulatedDualInputModel::pairDelayTable(
    int refPin, int otherPin, wave::Edge edge) const {
  return pairDelayTables_.at(pairKey(refPin, otherPin, edge));
}

const DualTable& TabulatedDualInputModel::pairTransitionTable(
    int refPin, int otherPin, wave::Edge edge) const {
  return pairTransitionTables_.at(pairKey(refPin, otherPin, edge));
}

std::vector<std::tuple<int, int, wave::Edge>> TabulatedDualInputModel::pairKeys()
    const {
  std::vector<std::tuple<int, int, wave::Edge>> out;
  for (const auto& [k, t] : pairDelayTables_) {
    const wave::Edge e = k % 2 == 0 ? wave::Edge::Rising : wave::Edge::Falling;
    const int refOther = k / 2;
    out.emplace_back(refOther / 64, refOther % 64, e);
  }
  return out;
}

const DualTable& TabulatedDualInputModel::delayTable(int refPin,
                                                     wave::Edge edge) const {
  return delayTables_.at(key(refPin, edge));
}

const DualTable& TabulatedDualInputModel::transitionTable(int refPin,
                                                          wave::Edge edge) const {
  return transitionTables_.at(key(refPin, edge));
}

double TabulatedDualInputModel::delayRatio(const DualQuery& q) const {
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.table_lookups", 1);
  // Sampled 1-in-64: a lookup is ~100ns, so full timing would dominate it.
  PROX_OBS_SCOPED_HIST_NS_SAMPLED("model.dual.lookup_ns", 6);
  StatsSlot& slot = statsSlot();
  ++slot.stats.lookups;
  slot.lastClampDistance = 0.0;
  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  // Outside the proximity window the other input cannot affect the delay.
  if (q.sep >= d1) {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.window_shortcuts", 1);
    return 1.0;
  }
  auto pit = pairDelayTables_.find(pairKey(q.refPin, q.otherPin, q.edge));
  const DualTable* t = nullptr;
  if (pit != pairDelayTables_.end()) {
    t = &pit->second;
  } else if (auto it = delayTables_.find(key(q.refPin, q.edge));
             it != delayTables_.end()) {
    t = &it->second;
  } else {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.missing_tables", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "no dual delay table for reference pin")
            .withSite("model.dual")
            .withPin(q.refPin));
  }
  double dist = 0.0;
  const double r =
      t->interpolate(q.tauRef / d1, q.tauOther / d1, q.sep / d1, &dist);
  slot.lastClampDistance = dist;
  if (dist > 0.0) {
    ++slot.stats.clamped;
    slot.stats.maxDistance = std::max(slot.stats.maxDistance, dist);
    PROX_OBS_COUNT_IN(obsCells, "model.dual.clamped_lookups", 1);
  }
  return r;
}

double TabulatedDualInputModel::transitionRatio(const DualQuery& q) const {
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.table_lookups", 1);
  PROX_OBS_SCOPED_HIST_NS_SAMPLED("model.dual.lookup_ns", 6);
  StatsSlot& slot = statsSlot();
  ++slot.stats.lookups;
  slot.lastClampDistance = 0.0;
  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  const double t1 = m.transition(q.tauRef);
  // Transition-time proximity window: sep < Delta^(1) + tau^(1).
  if (q.sep >= d1 + t1) {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.window_shortcuts", 1);
    return 1.0;
  }
  auto pit = pairTransitionTables_.find(pairKey(q.refPin, q.otherPin, q.edge));
  const DualTable* t = nullptr;
  if (pit != pairTransitionTables_.end()) {
    t = &pit->second;
  } else if (auto it = transitionTables_.find(key(q.refPin, q.edge));
             it != transitionTables_.end()) {
    t = &it->second;
  } else {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.missing_tables", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "no dual transition table for reference pin")
            .withSite("model.dual")
            .withPin(q.refPin));
  }
  double dist = 0.0;
  const double r =
      t->interpolate(q.tauRef / t1, q.tauOther / t1, q.sep / t1, &dist);
  slot.lastClampDistance = dist;
  if (dist > 0.0) {
    ++slot.stats.clamped;
    slot.stats.maxDistance = std::max(slot.stats.maxDistance, dist);
    PROX_OBS_COUNT_IN(obsCells, "model.dual.clamped_lookups", 1);
  }
  return r;
}

std::size_t TabulatedDualInputModel::totalBytes() const {
  std::size_t b = 0;
  for (const auto& [k, t] : delayTables_) b += t.bytes();
  for (const auto& [k, t] : transitionTables_) b += t.bytes();
  for (const auto& [k, t] : pairDelayTables_) b += t.bytes();
  for (const auto& [k, t] : pairTransitionTables_) b += t.bytes();
  return b;
}

}  // namespace prox::model
