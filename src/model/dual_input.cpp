#include "model/dual_input.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/scoped_timer.hpp"
#include "simd/dispatch.hpp"
#include "simd/trilerp.hpp"

namespace prox::model {

namespace {

/// Index of the grid cell containing @p x, clamped to the valid range, plus
/// the interpolation fraction.
std::pair<std::size_t, double> locate(const std::vector<double>& grid, double x) {
  if (grid.size() == 1) return {0, 0.0};
  if (x <= grid.front()) return {0, 0.0};
  if (x >= grid.back()) return {grid.size() - 2, 1.0};
  std::size_t hi = 1;
  while (hi + 1 < grid.size() && grid[hi] < x) ++hi;
  const double f = (x - grid[hi - 1]) / (grid[hi] - grid[hi - 1]);
  return {hi - 1, f};
}

/// Relative overshoot of @p x beyond the grid span (0 for in-grid queries).
/// Degenerate single-point grids normalize by the point's magnitude instead.
double overshoot(const std::vector<double>& grid, double x) {
  const double lo = grid.front();
  const double hi = grid.back();
  if (x >= lo && x <= hi) return 0.0;
  const double span = hi - lo;
  const double denom = span > 0.0 ? span : std::max(std::fabs(lo), 1.0);
  return (x < lo ? lo - x : x - hi) / denom;
}

}  // namespace

std::size_t DualTable::healedCount() const {
  std::size_t n = 0;
  for (const std::uint8_t h : healed) n += h != 0 ? 1 : 0;
  return n;
}

double DualTable::interpolate(double uu, double vv, double ww,
                              double* clampDistance) const {
  if (u.empty() || v.empty() || w.empty()) {
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "DualTable: empty grid")
            .withSite("model.dual"));
  }
  if (clampDistance != nullptr) {
    *clampDistance =
        std::max({overshoot(u, uu), overshoot(v, vv), overshoot(w, ww)});
  }
  const auto [iu, fu] = locate(u, uu);
  const auto [iv, fv] = locate(v, vv);
  const auto [iw, fw] = locate(w, ww);
  const std::size_t iu1 = std::min(iu + 1, u.size() - 1);
  const std::size_t iv1 = std::min(iv + 1, v.size() - 1);
  const std::size_t iw1 = std::min(iw + 1, w.size() - 1);

  auto lerp = [](double a, double b, double f) { return a + f * (b - a); };
  const double c00 = lerp(at(iu, iv, iw), at(iu1, iv, iw), fu);
  const double c01 = lerp(at(iu, iv, iw1), at(iu1, iv, iw1), fu);
  const double c10 = lerp(at(iu, iv1, iw), at(iu1, iv1, iw), fu);
  const double c11 = lerp(at(iu, iv1, iw1), at(iu1, iv1, iw1), fu);
  const double c0 = lerp(c00, c10, fv);
  const double c1 = lerp(c01, c11, fv);
  return lerp(c0, c1, fw);
}

OracleDualInputModel::OracleDualInputModel(GateSimulator& sim,
                                           const SingleInputModelSet& singles)
    : OracleDualInputModel(sim, singles, nullptr) {}

OracleDualInputModel::OracleDualInputModel(GateSimulator& sim,
                                           const SingleInputModelSet& singles,
                                           DualMemo* memo)
    : sim_(sim), singles_(singles), memo_(memo != nullptr ? memo : &ownMemo_) {}

DualMemo::Pair OracleDualInputModel::evaluate(const DualQuery& q) const {
  // Memoize on attosecond-quantized times: queries repeated across sweeps
  // (the common case in the benches) hit the cache.
  const DualMemo::Key key =
      DualMemo::makeKey(q.refPin, q.otherPin, q.edge == wave::Edge::Rising,
                        q.tauRef, q.tauOther, q.sep);
  DualMemo::Pair p;
  if (memo_->find(key, &p)) {
    PROX_OBS_COUNT("model.dual.oracle_cache_hits", 1);
    return p;
  }
  PROX_OBS_COUNT("model.dual.oracle_cache_misses", 1);
  PROX_OBS_COUNT("model.dual.oracle_evals", 1);

  InputEvent ref{q.refPin, q.edge, 0.0, q.tauRef};
  InputEvent other{q.otherPin, q.edge, q.sep, q.tauOther};
  const SimOutcome o = sim_.simulate({ref, other}, 0);

  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  const double t1 = m.transition(q.tauRef);

  p = DualMemo::Pair{};
  if (o.delay && d1 > 0.0) p.delayRatio = *o.delay / d1;
  if (o.transitionTime && t1 > 0.0) p.transitionRatio = *o.transitionTime / t1;
  // Inserted only after a successful simulate(): a failed evaluation is
  // never cached (exactly the old map memo's behavior).
  memo_->insert(key, p);
  return p;
}

double OracleDualInputModel::delayRatio(const DualQuery& q) const {
  return evaluate(q).delayRatio;
}

double OracleDualInputModel::transitionRatio(const DualQuery& q) const {
  return evaluate(q).transitionRatio;
}

namespace {
// Process-unique ids index each thread's slot vector, so two threads (or two
// model instances) never share clamp-stats storage.
std::atomic<std::uint64_t> gNextStatsId{0};
}  // namespace

TabulatedDualInputModel::TabulatedDualInputModel(const SingleInputModelSet& singles)
    : singles_(singles),
      statsId_(gNextStatsId.fetch_add(1, std::memory_order_relaxed)) {}

TabulatedDualInputModel::StatsSlot& TabulatedDualInputModel::statsSlot() const {
  thread_local std::vector<StatsSlot> slots;
  if (slots.size() <= statsId_) {
    slots.resize(static_cast<std::size_t>(statsId_) + 1);
  }
  return slots[static_cast<std::size_t>(statsId_)];
}

TabulatedDualInputModel::ClampStats TabulatedDualInputModel::clampStats() const {
  return statsSlot().stats;
}

void TabulatedDualInputModel::resetClampStats() const {
  statsSlot() = StatsSlot{};
}

double TabulatedDualInputModel::lastClampDistance() const {
  return statsSlot().lastClampDistance;
}

void TabulatedDualInputModel::setDelayTable(int refPin, wave::Edge edge,
                                            DualTable table) {
  delayTables_[key(refPin, edge)] = std::move(table);
  rebuildIndex();
}

void TabulatedDualInputModel::setTransitionTable(int refPin, wave::Edge edge,
                                                 DualTable table) {
  transitionTables_[key(refPin, edge)] = std::move(table);
  rebuildIndex();
}

void TabulatedDualInputModel::setPairDelayTable(int refPin, int otherPin,
                                                wave::Edge edge,
                                                DualTable table) {
  pairDelayTables_[pairKey(refPin, otherPin, edge)] = std::move(table);
  rebuildIndex();
}

void TabulatedDualInputModel::setPairTransitionTable(int refPin, int otherPin,
                                                     wave::Edge edge,
                                                     DualTable table) {
  pairTransitionTables_[pairKey(refPin, otherPin, edge)] = std::move(table);
  rebuildIndex();
}

bool TabulatedDualInputModel::hasTables(int refPin, wave::Edge edge) const {
  return delayTables_.count(key(refPin, edge)) != 0 &&
         transitionTables_.count(key(refPin, edge)) != 0;
}

bool TabulatedDualInputModel::hasPairTables(int refPin, int otherPin,
                                            wave::Edge edge) const {
  return pairDelayTables_.count(pairKey(refPin, otherPin, edge)) != 0 &&
         pairTransitionTables_.count(pairKey(refPin, otherPin, edge)) != 0;
}

const DualTable& TabulatedDualInputModel::pairDelayTable(
    int refPin, int otherPin, wave::Edge edge) const {
  return pairDelayTables_.at(pairKey(refPin, otherPin, edge));
}

const DualTable& TabulatedDualInputModel::pairTransitionTable(
    int refPin, int otherPin, wave::Edge edge) const {
  return pairTransitionTables_.at(pairKey(refPin, otherPin, edge));
}

std::vector<std::tuple<int, int, wave::Edge>> TabulatedDualInputModel::pairKeys()
    const {
  std::vector<std::tuple<int, int, wave::Edge>> out;
  for (const auto& [k, t] : pairDelayTables_) {
    const wave::Edge e = k % 2 == 0 ? wave::Edge::Rising : wave::Edge::Falling;
    const int refOther = k / 2;
    out.emplace_back(refOther / 64, refOther % 64, e);
  }
  return out;
}

const DualTable& TabulatedDualInputModel::delayTable(int refPin,
                                                     wave::Edge edge) const {
  return delayTables_.at(key(refPin, edge));
}

const DualTable& TabulatedDualInputModel::transitionTable(int refPin,
                                                          wave::Edge edge) const {
  return transitionTables_.at(key(refPin, edge));
}

double TabulatedDualInputModel::delayRatio(const DualQuery& q) const {
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.table_lookups", 1);
  // Sampled 1-in-64: a lookup is ~100ns, so full timing would dominate it.
  PROX_OBS_SCOPED_HIST_NS_SAMPLED("model.dual.lookup_ns", 6);
  StatsSlot& slot = statsSlot();
  ++slot.stats.lookups;
  slot.lastClampDistance = 0.0;
  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  // Outside the proximity window the other input cannot affect the delay.
  if (q.sep >= d1) {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.window_shortcuts", 1);
    return 1.0;
  }
  auto pit = pairDelayTables_.find(pairKey(q.refPin, q.otherPin, q.edge));
  const DualTable* t = nullptr;
  if (pit != pairDelayTables_.end()) {
    t = &pit->second;
  } else if (auto it = delayTables_.find(key(q.refPin, q.edge));
             it != delayTables_.end()) {
    t = &it->second;
  } else {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.missing_tables", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "no dual delay table for reference pin")
            .withSite("model.dual")
            .withPin(q.refPin));
  }
  double dist = 0.0;
  const double r =
      t->interpolate(q.tauRef / d1, q.tauOther / d1, q.sep / d1, &dist);
  slot.lastClampDistance = dist;
  if (dist > 0.0) {
    ++slot.stats.clamped;
    slot.stats.maxDistance = std::max(slot.stats.maxDistance, dist);
    PROX_OBS_COUNT_IN(obsCells, "model.dual.clamped_lookups", 1);
  }
  return r;
}

double TabulatedDualInputModel::transitionRatio(const DualQuery& q) const {
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.table_lookups", 1);
  PROX_OBS_SCOPED_HIST_NS_SAMPLED("model.dual.lookup_ns", 6);
  StatsSlot& slot = statsSlot();
  ++slot.stats.lookups;
  slot.lastClampDistance = 0.0;
  const SingleInputModel& m = singles_.at(q.refPin, q.edge);
  const double d1 = m.delay(q.tauRef);
  const double t1 = m.transition(q.tauRef);
  // Transition-time proximity window: sep < Delta^(1) + tau^(1).
  if (q.sep >= d1 + t1) {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.window_shortcuts", 1);
    return 1.0;
  }
  auto pit = pairTransitionTables_.find(pairKey(q.refPin, q.otherPin, q.edge));
  const DualTable* t = nullptr;
  if (pit != pairTransitionTables_.end()) {
    t = &pit->second;
  } else if (auto it = transitionTables_.find(key(q.refPin, q.edge));
             it != transitionTables_.end()) {
    t = &it->second;
  } else {
    PROX_OBS_COUNT_IN(obsCells, "model.dual.missing_tables", 1);
    throw support::DiagnosticError(
        support::makeDiagnostic(support::StatusCode::TableMissing,
                                "no dual transition table for reference pin")
            .withSite("model.dual")
            .withPin(q.refPin));
  }
  double dist = 0.0;
  const double r =
      t->interpolate(q.tauRef / t1, q.tauOther / t1, q.sep / t1, &dist);
  slot.lastClampDistance = dist;
  if (dist > 0.0) {
    ++slot.stats.clamped;
    slot.stats.maxDistance = std::max(slot.stats.maxDistance, dist);
    PROX_OBS_COUNT_IN(obsCells, "model.dual.clamped_lookups", 1);
  }
  return r;
}

void TabulatedDualInputModel::appendView(const DualTable& t) {
  // overshoot()'s denominator, hoisted per axis: the span, or max(|lo|, 1)
  // for single-point grids.
  const auto axisDenom = [](const std::vector<double>& g) {
    if (g.empty()) return 1.0;
    const double span = g.back() - g.front();
    return span > 0.0 ? span : std::max(std::fabs(g.front()), 1.0);
  };

  TableView v;
  v.nu = static_cast<std::uint32_t>(t.u.size());
  v.nv = static_cast<std::uint32_t>(t.v.size());
  v.nw = static_cast<std::uint32_t>(t.w.size());
  v.strideV = v.nw;
  v.strideU = v.nv * v.nw;
  v.uOff = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), t.u.begin(), t.u.end());
  v.vOff = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), t.v.begin(), t.v.end());
  v.wOff = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), t.w.begin(), t.w.end());
  v.valOff = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), t.ratio.begin(), t.ratio.end());
  v.uDenom = axisDenom(t.u);
  v.vDenom = axisDenom(t.v);
  v.wDenom = axisDenom(t.w);
  views_.push_back(v);
}

void TabulatedDualInputModel::rebuildIndex() {
  arena_.clear();
  views_.clear();

  // Fixed compilation order (delay, transition, pairDelay, pairTransition;
  // ascending key within each) keeps the arena layout a pure function of the
  // installed tables.
  const auto compile = [this](const std::map<int, DualTable>& tables,
                              std::vector<std::int32_t>& slots) {
    int maxKey = -1;
    for (const auto& [k, t] : tables) maxKey = std::max(maxKey, k);
    slots.assign(maxKey >= 0 ? static_cast<std::size_t>(maxKey) + 1 : 0, -1);
    for (const auto& [k, t] : tables) {
      if (k < 0) continue;  // batched path answers MissingTable; scalar still works
      slots[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(views_.size());
      appendView(t);
    }
  };
  compile(delayTables_, delaySlots_);
  compile(transitionTables_, transSlots_);
  compile(pairDelayTables_, pairDelaySlots_);
  compile(pairTransitionTables_, pairTransSlots_);
}

namespace {

/// Per-thread staging buffers for evaluateMany's multi-pass pipeline.  Flat
/// arrays written by index (no push_back in the hot loops); resize() is a
/// no-op after the first call at a given batch size.
struct BatchScratch {
  // Lane-indexed (one entry per query of the current tile).
  std::vector<std::uint8_t> alive;                   ///< single model found
  std::vector<double> sNum, sDen, aD, bD, aT, bT;    ///< staged tau segment
  std::vector<double> d1, t1;                        ///< Delta^(1), tau^(1)
  // Compact (survivors of the window/slot pass; size <= tile, tracked by
  // the caller's `staged` counter).
  std::vector<std::uint32_t> lane;   ///< staged index -> tile-local lane
  std::vector<std::int32_t> view;    ///< staged index -> table view
  std::vector<double> uu, vv, ww;    ///< numerators, then coordinates
  std::vector<double> nrm;           ///< shared normalization denominator
  // View-grouped (counting-sorted so each table's lanes are contiguous and
  // the axis kernels run monomorphically against one shared grid).
  std::vector<std::uint32_t> laneG;  ///< group position -> tile-local lane
  std::vector<double> uuP, vvP, wwP;            ///< packed coordinates
  std::vector<double> fu, fv, fw;               ///< axis fractions
  std::vector<double> overU, overV, overW;      ///< axis overshoots
  std::vector<std::uint32_t> idxU, idxV, idxW;  ///< axis cell indices
  std::vector<std::uint32_t> corner[8];
  std::vector<double> out;
  // Per-view group bookkeeping (sized to the view count, not the tile).
  std::vector<std::uint32_t> vcnt, voff;

  void resize(std::size_t n) {
    alive.resize(n);
    for (auto* p : {&sNum, &sDen, &aD, &bD, &aT, &bT, &d1, &t1, &uu, &vv,
                    &ww, &nrm, &uuP, &vvP, &wwP, &fu, &fv, &fw, &overU,
                    &overV, &overW, &out}) {
      p->resize(n);
    }
    for (auto* p : {&lane, &laneG, &idxU, &idxV, &idxW}) p->resize(n);
    view.resize(n);
    for (auto& c : corner) c.resize(n);
  }
};

/// Map-key -> view-index probe; an out-of-range key means "no table", exactly
/// what the map find would conclude.
std::int32_t slotAt(const std::vector<std::int32_t>& slots, int k) {
  return k >= 0 && static_cast<std::size_t>(k) < slots.size()
             ? slots[static_cast<std::size_t>(k)]
             : -1;
}

/// Records which SIMD kernel is live as the "simd.dispatch.path" report
/// label; re-recorded only when the resolved path changes.
void recordDispatchPath() {
  static std::atomic<int> last{-1};
  const simd::Path p = simd::activePath();
  const int pi = static_cast<int>(p);
  if (last.load(std::memory_order_relaxed) == pi) return;
  last.store(pi, std::memory_order_relaxed);
  obs::setLabel("simd.dispatch.path", simd::pathName(p));
}

}  // namespace

void TabulatedDualInputModel::evaluateMany(std::span<const DualQuery> queries,
                                           std::span<DualResult> results) const {
  if (results.size() < queries.size()) {
    throw std::invalid_argument(
        "TabulatedDualInputModel::evaluateMany: results span too small");
  }
  const std::size_t n = queries.size();
  if (n == 0) return;
  PROX_OBS_BATCH(obsCells);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.batch_calls", 1);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.batch_queries", n);
  // Scalar parity: delayRatio/transitionRatio count every entry as a lookup.
  PROX_OBS_COUNT_IN(obsCells, "model.dual.table_lookups", n);
  recordDispatchPath();

  // Tiled pipeline: each tile's staging arrays stay L1/L2-resident across
  // all six passes instead of streaming ~20 full-batch arrays through the
  // cache hierarchy.  Lanes are independent and the clamp/shortcut/missing
  // tallies are additive, so tiling cannot change any result.
  constexpr std::size_t kTile = 512;
  thread_local BatchScratch s;
  s.resize(std::min(n, kTile));

  // Per-call single-input model cache for the common pin range: one map
  // lookup per distinct (pin, edge) instead of one per query.  Built lazily
  // inside the call, so it can never go stale against singles_ mutations.
  constexpr int kSingleCache = 128;
  const SingleInputModel* singleCache[kSingleCache];
  bool singleCached[kSingleCache] = {};

  std::uint64_t shortcuts = 0;
  std::uint64_t clamped = 0;
  std::uint64_t missing = 0;
  const double* arena = arena_.data();

  for (std::size_t tile0 = 0; tile0 < n; tile0 += kTile) {
  const std::size_t tn = std::min(kTile, n - tile0);
  const DualQuery* qs = queries.data() + tile0;
  DualResult* rs = results.data() + tile0;

  // Pass 1 (scalar): resolve each lane's single-input model and stage the
  // bracketing tau segment of its sample table.  The fraction's division and
  // the endpoint lerps move to the vector pass; everything staged here is
  // branch/search work the vector units cannot express.
  for (std::size_t i = 0; i < tn; ++i) {
    const DualQuery& q = qs[i];
    rs[i] = DualResult{};

    const int skey = key(q.refPin, q.edge);
    const SingleInputModel* m = nullptr;
    if (skey >= 0 && skey < kSingleCache) {
      if (!singleCached[skey]) {
        singleCache[skey] =
            singles_.has(q.refPin, q.edge) ? &singles_.at(q.refPin, q.edge)
                                           : nullptr;
        singleCached[skey] = true;
      }
      m = singleCache[skey];
    } else if (singles_.has(q.refPin, q.edge)) {
      m = &singles_.at(q.refPin, q.edge);
    }
    s.alive[i] = m != nullptr ? 1 : 0;
    if (m == nullptr) {
      // The scalar path's singles_.at() would throw here without counting
      // missing_tables; the batch marks the lane instead.  Benign operands
      // keep the dead lane's vector arithmetic out of NaN territory.
      rs[i].status = DualResult::Status::MissingTable;
      s.sNum[i] = 0.0;
      s.sDen[i] = 1.0;
      s.aD[i] = s.bD[i] = s.aT[i] = s.bT[i] = 0.0;
      continue;
    }
    const auto& t = m->table();
    if (t.size() == 1) {
      // interp() returns the lone sample directly; f = 0/1 reproduces it.
      s.sNum[i] = 0.0;
      s.sDen[i] = 1.0;
      s.aD[i] = s.bD[i] = t[0].delay;
      s.aT[i] = s.bT[i] = t[0].transition;
    } else {
      // Branchless twin of interp()'s bracketing scan: on a sorted grid the
      // scan's stopping index equals 1 + |{k in [1, size-2] : tau_k < tau}|.
      std::size_t hi = 1;
      for (std::size_t k = 1; k + 1 < t.size(); ++k) {
        hi += t[k].tau < q.tauRef ? 1 : 0;
      }
      const auto& a = t[hi - 1];
      const auto& b = t[hi];
      s.sNum[i] = q.tauRef - a.tau;
      s.sDen[i] = b.tau - a.tau;
      s.aD[i] = a.delay;
      s.bD[i] = b.delay;
      s.aT[i] = a.transition;
      s.bT[i] = b.transition;
    }
  }

  // Pass 2 (SIMD): Delta^(1)(tauRef) and tau^(1)(tauRef) for every lane --
  // the batch's first round of divisions, bit-identical to
  // SingleInputModel::delay()/transition() on the staged segments.
  {
    simd::InterpPairBatch b;
    b.num = s.sNum.data();
    b.den = s.sDen.data();
    b.aD = s.aD.data();
    b.bD = s.bD.data();
    b.aT = s.aT.data();
    b.bT = s.bT.data();
    b.d1 = s.d1.data();
    b.t1 = s.t1.data();
    b.n = tn;
    simd::interpPair(b);
  }

  // Pass 3 (scalar): proximity-window shortcuts and table-slot resolution.
  // Survivors are compacted so the remaining passes only touch lanes that
  // actually reach the trilinear blend.
  std::size_t staged = 0;
  for (std::size_t i = 0; i < tn; ++i) {
    if (s.alive[i] == 0) continue;
    const DualQuery& q = qs[i];
    const double d1 = s.d1[i];
    double norm;
    std::int32_t vi;
    if (q.kind == DualKind::Delay) {
      // Outside the proximity window the other input cannot affect the delay.
      if (q.sep >= d1) {
        ++shortcuts;
        continue;  // result keeps its default value 1.0
      }
      vi = slotAt(pairDelaySlots_, pairKey(q.refPin, q.otherPin, q.edge));
      if (vi < 0) vi = slotAt(delaySlots_, key(q.refPin, q.edge));
      norm = d1;
    } else {
      const double t1 = s.t1[i];
      // Transition-time proximity window: sep < Delta^(1) + tau^(1).
      if (q.sep >= d1 + t1) {
        ++shortcuts;
        continue;
      }
      vi = slotAt(pairTransSlots_, pairKey(q.refPin, q.otherPin, q.edge));
      if (vi < 0) vi = slotAt(transSlots_, key(q.refPin, q.edge));
      norm = t1;
    }
    if (vi < 0) {
      ++missing;  // scalar parity: counted before the TableMissing throw
      rs[i].status = DualResult::Status::MissingTable;
      continue;
    }
    const TableView& tv = views_[static_cast<std::size_t>(vi)];
    if (tv.nu == 0 || tv.nv == 0 || tv.nw == 0) {
      // Scalar interpolate() throws TableMissing ("empty grid") here without
      // counting missing_tables.
      rs[i].status = DualResult::Status::MissingTable;
      continue;
    }
    s.lane[staged] = static_cast<std::uint32_t>(i);
    s.view[staged] = vi;
    s.uu[staged] = q.tauRef;
    s.vv[staged] = q.tauOther;
    s.ww[staged] = q.sep;
    s.nrm[staged] = norm;
    ++staged;
  }

  if (staged > 0) {
    // Pass 4 (SIMD): normalized table coordinates, in place over the staged
    // numerators.
    simd::divide(s.uu.data(), s.nrm.data(), s.uu.data(), staged);
    simd::divide(s.vv.data(), s.nrm.data(), s.vv.data(), staged);
    simd::divide(s.ww.data(), s.nrm.data(), s.ww.data(), staged);

    // Pass 5: group the staged lanes by table view (counting sort), so every
    // axis kernel runs monomorphically against one shared grid -- the grid
    // values become broadcast constants instead of per-lane gathers.  Lanes
    // are merely reordered (each is still processed exactly once against its
    // own table), so grouping cannot change any result.
    const std::size_t nviews = views_.size();
    s.vcnt.assign(nviews, 0);
    for (std::size_t j = 0; j < staged; ++j) {
      ++s.vcnt[static_cast<std::size_t>(s.view[j])];
    }
    s.voff.resize(nviews);
    std::uint32_t run = 0;
    for (std::size_t v = 0; v < nviews; ++v) {
      s.voff[v] = run;
      run += s.vcnt[v];
    }
    for (std::size_t j = 0; j < staged; ++j) {
      const std::uint32_t pos = s.voff[static_cast<std::size_t>(s.view[j])]++;
      s.laneG[pos] = s.lane[j];
      s.uuP[pos] = s.uu[j];
      s.vvP[pos] = s.vv[j];
      s.wwP[pos] = s.ww[j];
    }

    // Per group: the axis-location kernel (overshoot, cell index, fraction)
    // for each axis, then a short scalar combine staging the clamp distance
    // and the 8 corner indices with the view's strides hoisted.
    for (std::size_t v = 0; v < nviews; ++v) {
      const std::uint32_t cnt = s.vcnt[v];
      if (cnt == 0) continue;
      const std::uint32_t glo = s.voff[v] - cnt;  // voff was bumped to the end
      const TableView& tv = views_[v];

      const auto runAxis = [&](std::uint32_t off, std::uint32_t nx,
                               double denom, const std::vector<double>& xs,
                               std::vector<double>& f, std::vector<double>& over,
                               std::vector<std::uint32_t>& idx) {
        if (nx >= 2) {
          simd::AxisLocateBatch ab;
          ab.grid = arena + off;
          ab.n = nx;
          ab.denom = denom;
          ab.x = xs.data() + glo;
          ab.f = f.data() + glo;
          ab.over = over.data() + glo;
          ab.idx = idx.data() + glo;
          ab.count = cnt;
          simd::axisLocate(ab);
        } else {
          // Single-point grid: locate() is always {0, 0.0}; the overshoot is
          // the distance from the lone point (select form of overshoot()).
          const double g0 = arena[off];
          for (std::uint32_t p = glo; p < glo + cnt; ++p) {
            const double x = xs[p];
            const double m1 = g0 - x;
            const double m2 = x - g0;
            double m = m1 > m2 ? m1 : m2;
            m = m > 0.0 ? m : 0.0;
            over[p] = m / denom;
            f[p] = 0.0;
            idx[p] = 0;
          }
        }
      };
      runAxis(tv.uOff, tv.nu, tv.uDenom, s.uuP, s.fu, s.overU, s.idxU);
      runAxis(tv.vOff, tv.nv, tv.vDenom, s.vvP, s.fv, s.overV, s.idxV);
      runAxis(tv.wOff, tv.nw, tv.wDenom, s.wwP, s.fw, s.overW, s.idxW);

      const std::uint32_t ghi = glo + cnt;
      for (std::uint32_t p = glo; p < ghi; ++p) {
        const double dist = std::max({s.overU[p], s.overV[p], s.overW[p]});
        DualResult& r = rs[s.laneG[p]];
        r.clampDistance = dist;
        if (dist > 0.0) ++clamped;
        const std::uint32_t iu = s.idxU[p];
        const std::uint32_t iv = s.idxV[p];
        const std::uint32_t iw = s.idxW[p];
        const std::uint32_t iu1 = std::min(iu + 1, tv.nu - 1);
        const std::uint32_t iv1 = std::min(iv + 1, tv.nv - 1);
        const std::uint32_t iw1 = std::min(iw + 1, tv.nw - 1);
        const std::uint32_t rowLo = tv.valOff + iu * tv.strideU;
        const std::uint32_t rowHi = tv.valOff + iu1 * tv.strideU;
        const std::uint32_t colLo = iv * tv.strideV;
        const std::uint32_t colHi = iv1 * tv.strideV;
        // Corner order matches the kernel contract: c000 c100 c001 c101
        //                                           c010 c110 c011 c111.
        s.corner[0][p] = rowLo + colLo + iw;
        s.corner[1][p] = rowHi + colLo + iw;
        s.corner[2][p] = rowLo + colLo + iw1;
        s.corner[3][p] = rowHi + colLo + iw1;
        s.corner[4][p] = rowLo + colHi + iw;
        s.corner[5][p] = rowHi + colHi + iw;
        s.corner[6][p] = rowLo + colHi + iw1;
        s.corner[7][p] = rowHi + colHi + iw1;
      }
    }

    // Pass 6 (SIMD): trilinear blends over the grouped lanes, then scatter
    // back to each lane's result.
    simd::TrilerpBatch batch;
    batch.base = arena;
    for (int c = 0; c < 8; ++c) batch.corner[c] = s.corner[c].data();
    batch.fu = s.fu.data();
    batch.fv = s.fv.data();
    batch.fw = s.fw.data();
    batch.out = s.out.data();
    batch.n = staged;
    simd::trilerp(batch);
    for (std::size_t j = 0; j < staged; ++j) {
      rs[s.laneG[j]].value = s.out[j];
    }
  }
  }  // tile loop

  PROX_OBS_COUNT_IN(obsCells, "model.dual.window_shortcuts", shortcuts);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.clamped_lookups", clamped);
  PROX_OBS_COUNT_IN(obsCells, "model.dual.missing_tables", missing);
}

std::size_t TabulatedDualInputModel::totalBytes() const {
  std::size_t b = 0;
  for (const auto& [k, t] : delayTables_) b += t.bytes();
  for (const auto& [k, t] : transitionTables_) b += t.bytes();
  for (const auto& [k, t] : pairDelayTables_) b += t.bytes();
  for (const auto& [k, t] : pairTransitionTables_) b += t.bytes();
  return b;
}

}  // namespace prox::model
