#include "model/single_input.hpp"

#include <algorithm>
#include <stdexcept>

namespace prox::model {

namespace {

/// Piecewise-linear interpolation with linear extrapolation at both ends.
double interp(const std::vector<SingleInputModel::Sample>& t, double tau,
              double SingleInputModel::Sample::*field) {
  if (t.size() == 1) return t[0].*field;
  // Locate the bracketing pair (or the end pair for extrapolation).
  std::size_t hi = 1;
  while (hi + 1 < t.size() && t[hi].tau < tau) ++hi;
  const auto& a = t[hi - 1];
  const auto& b = t[hi];
  const double f = (tau - a.tau) / (b.tau - a.tau);
  return a.*field + f * (b.*field - a.*field);
}

}  // namespace

SingleInputModel::SingleInputModel(int pin, wave::Edge edge,
                                   std::vector<Sample> table, double loadCap,
                                   double strengthK, double vdd)
    : pin_(pin),
      edge_(edge),
      table_(std::move(table)),
      loadCap_(loadCap),
      strengthK_(strengthK),
      vdd_(vdd) {
  if (table_.empty()) {
    throw std::invalid_argument("SingleInputModel: empty table");
  }
  if (!std::is_sorted(table_.begin(), table_.end(),
                      [](const Sample& a, const Sample& b) { return a.tau < b.tau; })) {
    throw std::invalid_argument("SingleInputModel: table not sorted by tau");
  }
}

double SingleInputModel::delay(double tau) const {
  if (table_.empty()) throw std::runtime_error("SingleInputModel: not characterized");
  return interp(table_, tau, &Sample::delay);
}

double SingleInputModel::transition(double tau) const {
  if (table_.empty()) throw std::runtime_error("SingleInputModel: not characterized");
  return interp(table_, tau, &Sample::transition);
}

double SingleInputModel::normalizedX(double tau) const {
  return loadCap_ / (strengthK_ * vdd_ * tau);
}

double SingleInputModel::delayOverTauAtX(double x) const {
  // Invert x(tau) = CL/(K Vdd tau): tau = CL/(K Vdd x), then evaluate.
  const double tau = loadCap_ / (strengthK_ * vdd_ * x);
  return delay(tau) / tau;
}

SingleInputModel SingleInputModel::characterize(
    GateSimulator& sim, int pin, wave::Edge edge,
    const std::vector<double>& tauGrid) {
  if (tauGrid.empty()) {
    throw std::invalid_argument("SingleInputModel::characterize: empty grid");
  }
  std::vector<Sample> table;
  for (double tau : tauGrid) {
    InputEvent ev;
    ev.pin = pin;
    ev.edge = edge;
    ev.tau = tau;
    ev.tRef = 0.0;
    const SimOutcome o = sim.simulateSingle(ev);
    if (!o.delay || !o.transitionTime) {
      throw std::runtime_error(
          "SingleInputModel::characterize: output never crossed thresholds");
    }
    table.push_back({tau, *o.delay, *o.transitionTime});
  }
  std::sort(table.begin(), table.end(),
            [](const Sample& a, const Sample& b) { return a.tau < b.tau; });

  const cells::CellSpec& spec = sim.gate().spec;
  // The driving strength for the normalized coordinate: the pulldown bank
  // moves a falling output (rising inputs) and vice versa.
  const bool outputFalls =
      spec.outputEdgeFor(edge) == wave::Edge::Falling;
  const spice::MosfetParams& p = outputFalls ? spec.tech.nmos : spec.tech.pmos;
  const double w = outputFalls ? spec.wn : spec.wp;
  const double k = 0.5 * p.kp * w / p.l;

  return SingleInputModel(pin, edge, std::move(table), spec.loadCap, k,
                          spec.tech.vdd);
}

void SingleInputModelSet::set(SingleInputModel m) {
  if (!m.valid()) throw std::invalid_argument("SingleInputModelSet: invalid model");
  models_[key(m.pin(), m.edge())] = std::move(m);
}

bool SingleInputModelSet::has(int pin, wave::Edge edge) const {
  return models_.count(key(pin, edge)) != 0;
}

const SingleInputModel& SingleInputModelSet::at(int pin, wave::Edge edge) const {
  auto it = models_.find(key(pin, edge));
  if (it == models_.end()) {
    throw std::out_of_range("SingleInputModelSet: no model for pin " +
                            std::to_string(pin));
  }
  return it->second;
}

SingleInputModelSet SingleInputModelSet::characterizeAll(
    GateSimulator& sim, const std::vector<double>& tauGrid) {
  SingleInputModelSet set;
  const cells::CellSpec& spec = sim.gate().spec;
  const int n = spec.type == cells::GateType::Inverter ? 1 : spec.fanin;
  for (int pin = 0; pin < n; ++pin) {
    set.set(SingleInputModel::characterize(sim, pin, wave::Edge::Rising, tauGrid));
    set.set(SingleInputModel::characterize(sim, pin, wave::Edge::Falling, tauGrid));
  }
  return set;
}

}  // namespace prox::model
