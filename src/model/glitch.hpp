#pragma once
// Inertial delay as a proximity effect (Section 6).
//
// On a NAND gate, a falling transition on one input close to a rising
// transition on another produces a partial negative-going glitch at the
// output: the rising input enables the pulldown stack, but the falling input
// blocks it shortly after.  The output "completes a transition" only when its
// excursion passes the V_il threshold -- which requires a minimum separation
// between the two opposite transitions.  That minimum separation *is* the
// gate's inertial delay, recovered here from the same macromodel machinery:
// a one-argument (separation) macromodel for the extreme output voltage,
// solved for the V_il (V_ih for NOR) crossing.

#include <optional>
#include <vector>

#include "model/gate_sim.hpp"

namespace prox::model {

/// Raw measurement of one opposite-transition scenario.
struct GlitchOutcome {
  double extremeVoltage = 0.0;  ///< min output voltage (max for NOR)
  bool completed = false;       ///< excursion passed the Section 2 threshold
  wave::Waveform out;
};

/// Simulation-backed analyzer for opposite-transition input pairs.
class GlitchAnalyzer {
 public:
  explicit GlitchAnalyzer(GateSimulator& sim);

  /// Simulates a falling transition on @p falling and a rising one on
  /// @p rising (the two events carry their own times/taus).  Remaining
  /// inputs sit at the non-controlling level.
  GlitchOutcome analyze(const InputEvent& falling, const InputEvent& rising);

 private:
  GateSimulator& sim_;
};

/// Characterized macromodel: extreme output voltage as a function of the
/// separation s = t(falling) - t(rising) for fixed transition times,
/// mirroring the paper's "macromodel for the minimum voltage at the output
/// which will be similar to (3.9)".
class GlitchModel {
 public:
  GlitchModel() = default;

  /// Characterizes the model over @p sepGrid (ascending separations).
  static GlitchModel characterize(GateSimulator& sim, int fallPin,
                                  double tauFall, int risePin, double tauRise,
                                  const std::vector<double>& sepGrid);

  /// Interpolated extreme output voltage at separation @p s.
  double extremeVoltage(double s) const;

  /// Minimum separation (falling after rising) at which the output completes
  /// its transition, i.e. the extreme voltage reaches @p level (the gate's
  /// V_il for NAND, V_ih for NOR).  nullopt when the characterized range
  /// never completes.  This is the paper's inertial-delay quantity.
  std::optional<double> minimumValidSeparation(double level) const;

  const std::vector<double>& separations() const { return sep_; }
  const std::vector<double>& voltages() const { return v_; }
  bool norLike() const { return norLike_; }

 private:
  std::vector<double> sep_;
  std::vector<double> v_;
  bool norLike_ = false;
};

/// Two-dimensional glitch macromodel: extreme output voltage over
/// (enabling transition time, separation) -- the Section 6 "macromodel ...
/// similar to (3.9)" with the non-temporal parameters fixed by the cell.
/// Bilinear interpolation; the inertial delay becomes a *function* of the
/// enabling slope.
class GlitchSurface {
 public:
  GlitchSurface() = default;

  /// Characterizes over the cross product of @p tauRiseGrid x @p sepGrid
  /// (both ascending).
  static GlitchSurface characterize(GateSimulator& sim, int fallPin,
                                    double tauFall, int risePin,
                                    const std::vector<double>& tauRiseGrid,
                                    const std::vector<double>& sepGrid);

  /// Interpolated extreme output voltage.
  double extremeVoltage(double tauRise, double sep) const;

  /// Minimum valid separation at the given enabling transition time: where
  /// the interpolated extreme voltage crosses @p level downward in sep.
  std::optional<double> minimumValidSeparation(double tauRise,
                                               double level) const;

  const std::vector<double>& tauRiseGrid() const { return tau_; }
  const std::vector<double>& sepGrid() const { return sep_; }

 private:
  double at(std::size_t it, std::size_t is) const {
    return v_[it * sep_.size() + is];
  }
  std::vector<double> tau_;
  std::vector<double> sep_;
  std::vector<double> v_;  ///< [tau-major]
};

}  // namespace prox::model
