// Fuzz target: the ".prox" characterized-model reader.  Contract: any byte
// sequence either loads into a CharacterizedGate or throws
// support::DiagnosticError (ParseError / ResourceExhausted / IoError).

#include <cstdint>
#include <sstream>
#include <string>

#include "characterize/serialize.hpp"
#include "support/diagnostic.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    prox::characterize::loadGateModel(is);
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: the contract for malformed input.
  }
  return 0;
}
