// Replay driver linked into the fuzz harnesses when the toolchain has no
// libFuzzer (-fsanitize=fuzzer).  Feeds every file argument -- or every
// regular file inside a directory argument, the way libFuzzer treats corpus
// directories -- through LLVMFuzzerTestOneInput once.  Exit 0 means every
// input was handled within the ingestion contract (success or typed
// rejection); a violation aborts the process just as it would under the real
// fuzzer.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int replayFile(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string bytes = ss.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // tolerate libFuzzer-style flags
    const std::filesystem::path p = argv[i];
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else {
      inputs.push_back(p);
    }
  }
  for (const auto& p : inputs) {
    const int rc = replayFile(p);
    if (rc != 0) return rc;
  }
  std::printf("replayed %zu input(s), no contract violation\n", inputs.size());
  return 0;
}
