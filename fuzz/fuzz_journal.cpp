// Fuzz target: the checkpoint journal loader.  Contract: any byte sequence
// either loads (tail damage is tolerated by design and reported via
// truncatedTail) or throws support::DiagnosticError for a corrupt header.

#include <cstdint>
#include <sstream>
#include <string>

#include "support/diagnostic.hpp"
#include "support/journal.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    prox::support::Journal::loadStream(is, "<fuzz>");
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: the contract for a corrupt header.
  }
  return 0;
}
