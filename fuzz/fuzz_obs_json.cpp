// Fuzz target: the obs JSON parser and stats-report reader.  Contract: any
// byte sequence either parses into a Report or throws
// support::DiagnosticError -- never std::out_of_range from a numeric
// conversion, stack overflow from nesting, or an unbounded allocation.

#include <cstdint>
#include <string>

#include "obs/report.hpp"
#include "support/diagnostic.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    prox::obs::parseJson(text);
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: the contract for malformed input.
  }
  return 0;
}
