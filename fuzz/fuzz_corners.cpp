// Fuzz target: the PVT corners-file parser.  Contract: any byte sequence
// either parses into a bounded, range-checked corner set or throws
// support::DiagnosticError.

#include <cstdint>
#include <string>

#include "cells/corner.hpp"
#include "support/diagnostic.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    prox::cells::parseCornersFile(text, "<fuzz>");
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: within contract.
  }
  return 0;
}
