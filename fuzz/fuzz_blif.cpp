// Fuzz target: the BLIF netlist reader.  Contract: any byte sequence
// either builds a Netlist against the analytic gate library or throws
// support::DiagnosticError.  Crashes, hangs, unbounded allocation, or
// foreign exception types are findings.

#include <cstdint>
#include <string>

#include "sta/blif.hpp"
#include "support/diagnostic.hpp"

namespace {

const prox::sta::GateLibrary& library() {
  static const prox::sta::GateLibrary lib = prox::sta::analyticLibrary();
  return lib;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  prox::sta::Netlist nl;
  try {
    prox::sta::readBlifString(text, library(), &nl);
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: the contract for malformed input.
  }
  return 0;
}
