// Fuzz target: the SPICE deck parser.  Contract: any byte sequence either
// parses into a Netlist or throws support::DiagnosticError.  Crashes,
// hangs, unbounded allocation, or foreign exception types are findings.

#include <cstdint>
#include <string>

#include "spice/netlist.hpp"
#include "support/diagnostic.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string deck(reinterpret_cast<const char*>(data), size);
  try {
    prox::spice::parseNetlist(deck);
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: the contract for malformed input.
  }
  return 0;
}
