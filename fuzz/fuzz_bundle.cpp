// Fuzz target: the multi-corner bundle reader.  Contract: any byte sequence
// either parses (manifest CRCs, declared section lengths, per-section CRCs
// and the embedded .prox packages all check out) or throws
// support::DiagnosticError -- never a crash, never an unbounded allocation.

#include <cstdint>
#include <string>

#include "fleet/bundle.hpp"
#include "support/diagnostic.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    prox::fleet::parseBundle(text, "<fuzz>");
  } catch (const prox::support::DiagnosticError&) {
    // Typed rejection: within contract.
  }
  return 0;
}
